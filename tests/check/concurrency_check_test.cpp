// The dynamic concurrency auditors (src/check/concurrency_check.*):
// lock-order cycle detection over lock classes and cross-thread ownership
// of DES-domain objects.
#include <gtest/gtest.h>

#include <thread>

#include "check/check.hpp"
#include "check/concurrency_check.hpp"
#include "common/mutex.hpp"

// Several tests below *deliberately* acquire locks in inverted order — the
// auditor under test is the oracle that must catch it.  TSan's own
// deadlock detector (rightly) flags those same injected inversions, so it
// is switched off for this binary; data-race detection stays on.  A no-op
// when TSan is not linked.
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}

namespace partib::check {
namespace {

class ConcurrencyCheckTest : public ::testing::Test {
 protected:
  // check::reset() clears the order graph, ownership map and counters so
  // tests cannot see each other's edges.
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

// -- lock-order auditor ------------------------------------------------------

TEST_F(ConcurrencyCheckTest, InjectedInversionIsReportedExactlyOnce) {
  ScopedLockAudit audit;
  common::Mutex a("test.A");
  common::Mutex b("test.B");

  {
    common::MutexLock la(a);
    common::MutexLock lb(b);  // records A → B
  }
  EXPECT_EQ(lock_order_reports(), 0u) << "consistent order must be silent";

  {
    common::MutexLock lb(b);
    common::MutexLock la(a);  // B → A closes the cycle
  }
  EXPECT_EQ(lock_order_reports(), 1u);

  // The same inversion again is deduplicated: one report per ordered pair.
  {
    common::MutexLock lb(b);
    common::MutexLock la(a);
  }
  EXPECT_EQ(lock_order_reports(), 1u);
}

TEST_F(ConcurrencyCheckTest, ConsistentOrderAcrossThreadsIsSilent) {
  ScopedLockAudit audit;
  common::Mutex a("test.A");
  common::Mutex b("test.B");
  auto locker = [&a, &b] {
    for (int i = 0; i < 100; ++i) {
      common::MutexLock la(a);
      common::MutexLock lb(b);
    }
  };
  std::thread t1(locker);
  std::thread t2(locker);
  t1.join();
  t2.join();
  EXPECT_EQ(lock_order_reports(), 0u);
}

TEST_F(ConcurrencyCheckTest, InversionIsDetectedAcrossInstancesOfAClass) {
  // The graph is over lock *classes* (Mutex names): an inversion between
  // two different instances of the same named class is still an inversion
  // — the runs never touch the same object, only the same classes.
  ScopedLockAudit audit;
  common::Mutex shard1("test.shard");
  common::Mutex shard2("test.shard");
  common::Mutex table("test.table");

  {
    common::MutexLock ls(shard1);
    common::MutexLock lt(table);  // shard → table
  }
  {
    common::MutexLock lt(table);
    common::MutexLock ls(shard2);  // table → shard: cycle via the class
  }
  EXPECT_GE(lock_order_reports(), 1u);
}

TEST_F(ConcurrencyCheckTest, SameClassNestingReports) {
  // Nesting two locks of one class deadlocks unless every thread orders
  // instances identically, which nothing enforces — so it reports.
  ScopedLockAudit audit;
  common::Mutex m1("test.same");
  common::Mutex m2("test.same");
  {
    common::MutexLock l1(m1);
    common::MutexLock l2(m2);
  }
  EXPECT_EQ(lock_order_reports(), 1u);
}

TEST_F(ConcurrencyCheckTest, HeldLockCountTracksNesting) {
  ScopedLockAudit audit;
  common::Mutex a("test.A");
  common::Mutex b("test.B");
  EXPECT_EQ(held_lock_count(), 0u);
  {
    common::MutexLock la(a);
    EXPECT_EQ(held_lock_count(), 1u);
    {
      common::MutexLock lb(b);
      EXPECT_EQ(held_lock_count(), 2u);
    }
    EXPECT_EQ(held_lock_count(), 1u);
  }
  EXPECT_EQ(held_lock_count(), 0u);
}

TEST_F(ConcurrencyCheckTest, DisabledAuditObservesNothing) {
  common::Mutex a("test.A");
  common::Mutex b("test.B");
  {
    common::MutexLock la(a);
    common::MutexLock lb(b);
  }
  {
    common::MutexLock lb(b);
    common::MutexLock la(a);
  }
  EXPECT_EQ(lock_order_reports(), 0u);
}

// -- cross-thread ownership auditor ------------------------------------------

TEST_F(ConcurrencyCheckTest, ForeignUnsynchronizedTouchReports) {
  ScopedOwnerAudit audit;
  int object = 0;
  on_owned_access(&object, "qp");  // this thread claims ownership
  EXPECT_EQ(cross_thread_reports(), 0u);

  std::thread other([&object] { on_owned_access(&object, "qp"); });
  other.join();
  EXPECT_EQ(cross_thread_reports(), 1u);
}

TEST_F(ConcurrencyCheckTest, OwnerRetouchIsSilent) {
  ScopedOwnerAudit audit;
  int object = 0;
  for (int i = 0; i < 10; ++i) on_owned_access(&object, "cq");
  EXPECT_EQ(cross_thread_reports(), 0u);
}

TEST_F(ConcurrencyCheckTest, ForeignTouchUnderAuditedLockIsSilent) {
  // Holding any partib Mutex at the access counts as synchronized — the
  // sharded-progress design takes a shard lock before crossing domains.
  ScopedOwnerAudit audit;
  common::Mutex shard("test.shard");
  int object = 0;
  on_owned_access(&object, "psend");

  std::thread other([&shard, &object] {
    common::MutexLock lock(shard);
    on_owned_access(&object, "psend");
  });
  other.join();
  EXPECT_EQ(cross_thread_reports(), 0u);
}

TEST_F(ConcurrencyCheckTest, RebindHandoffIsSilent) {
  ScopedOwnerAudit audit;
  int object = 0;
  on_owned_access(&object, "precv");

  std::thread other([&object] {
    rebind_owner(&object);  // explicit handoff to this thread
    on_owned_access(&object, "precv");
  });
  other.join();
  EXPECT_EQ(cross_thread_reports(), 0u);
}

TEST_F(ConcurrencyCheckTest, ForgetAllowsAddressReuse) {
  ScopedOwnerAudit audit;
  int object = 0;
  on_owned_access(&object, "qp");
  forget_owned(&object);  // object "destroyed"

  std::thread other([&object] {
    on_owned_access(&object, "qp");  // fresh claim at the reused address
  });
  other.join();
  EXPECT_EQ(cross_thread_reports(), 0u);
}

}  // namespace
}  // namespace partib::check
