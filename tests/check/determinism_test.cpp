// The DES determinism auditor: identical scenarios must produce identical
// dispatch-stream fingerprints run to run, different scenarios must not,
// and a fingerprint mismatch must report rule des.nondeterminism.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/check.hpp"
#include "check/determinism.hpp"
#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

namespace check = partib::check;

struct RunResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
};

RunResult audited_round(std::size_t bytes, std::size_t partitions,
                        int rounds) {
  ChannelFixture fx(bytes, partitions, ploggp_options());
  check::DeterminismAuditor auditor;
  auditor.attach(fx.engine);
  for (int r = 0; r < rounds; ++r) fx.run_round(r);
  return {auditor.fingerprint(), auditor.events_observed()};
}

TEST(Determinism, IdenticalScenariosProduceIdenticalFingerprints) {
  check::reset();
  const RunResult a = audited_round(64 * KiB, 16, 2);
  const RunResult b = audited_round(64 * KiB, 16, 2);
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(check::DeterminismAuditor::expect_identical(
      a.fingerprint, b.fingerprint, "16-partition scenario"));
  EXPECT_EQ(check::count_rule("des.nondeterminism"), 0u);
}

TEST(Determinism, DifferentScenariosDiverge) {
  check::reset();
  // Different message sizes shift every transfer's virtual timestamps, so
  // the dispatch streams cannot hash alike.  (Partition-count changes alone
  // may legitimately aggregate to the identical wire schedule.)
  const RunResult a = audited_round(64 * KiB, 16, 1);
  const RunResult b = audited_round(16 * KiB, 16, 1);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Determinism, AttachResetsTheFingerprint) {
  check::reset();
  sim::Engine engine;
  check::DeterminismAuditor auditor;
  auditor.attach(engine);
  engine.schedule_after(5, [] {}, "determinism_test.tick");
  engine.run();
  EXPECT_EQ(auditor.events_observed(), 1u);
  const std::uint64_t first = auditor.fingerprint();

  sim::Engine engine2;
  auditor.attach(engine2);  // re-attach starts a fresh run
  EXPECT_EQ(auditor.events_observed(), 0u);
  engine2.schedule_after(5, [] {}, "determinism_test.tick");
  engine2.run();
  EXPECT_EQ(auditor.fingerprint(), first);
}

TEST(Determinism, MismatchReportsNondeterminismRule) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  EXPECT_FALSE(check::DeterminismAuditor::expect_identical(
      0x1234, 0x4321, "deliberately divergent"));
  ASSERT_EQ(check::count_rule("des.nondeterminism"), 1u);
  EXPECT_NE(check::violations().back().detail.find("deliberately divergent"),
            std::string::npos);
}

TEST(Determinism, SiteTagsContributeToTheFingerprint) {
  check::reset();
  sim::Engine a;
  check::DeterminismAuditor aud;
  aud.attach(a);
  a.schedule_after(1, [] {}, "site.one");
  a.run();
  const std::uint64_t with_one = aud.fingerprint();

  sim::Engine b;
  aud.attach(b);
  b.schedule_after(1, [] {}, "site.two");
  b.run();
  EXPECT_NE(aud.fingerprint(), with_one)
      << "a changed scheduling site must change the stream fingerprint";
}

}  // namespace
}  // namespace partib::test
