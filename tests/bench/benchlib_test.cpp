// The benchmark harness itself: sane results from the overhead,
// perceived-bandwidth and sweep generators, plus the parameter probe's
// recovery of the configured fabric parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "bench/overhead.hpp"
#include "bench/perceived.hpp"
#include "bench/probe.hpp"
#include "bench/report.hpp"
#include "bench/sweep.hpp"
#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::bench {
namespace {

part::Options ploggp() { return test::ploggp_options(); }
part::Options persistent() { return test::persistent_options(); }

TEST(Overhead, ProducesPositiveDeterministicTimes) {
  OverheadConfig cfg;
  cfg.total_bytes = 64 * KiB;
  cfg.user_partitions = 16;
  cfg.options = ploggp();
  cfg.iterations = 5;
  cfg.warmup = 1;
  const auto a = run_overhead(cfg);
  const auto b = run_overhead(cfg);
  EXPECT_GT(a.mean_round, 0);
  EXPECT_EQ(a.mean_round, b.mean_round);  // fully deterministic
  EXPECT_EQ(a.min_round, b.min_round);
  EXPECT_GE(a.max_round, a.min_round);
}

TEST(Overhead, PersistentPostsOnePerPartitionPerRound) {
  OverheadConfig cfg;
  cfg.total_bytes = 64 * KiB;
  cfg.user_partitions = 8;
  cfg.options = persistent();
  cfg.iterations = 4;
  cfg.warmup = 1;
  const auto r = run_overhead(cfg);
  EXPECT_EQ(r.wrs_posted, 8u * 4u);
}

TEST(Overhead, RoundTimeGrowsWithMessageSize) {
  auto time_for = [&](std::size_t bytes) {
    OverheadConfig cfg;
    cfg.total_bytes = bytes;
    cfg.user_partitions = 16;
    cfg.options = ploggp();
    cfg.iterations = 3;
    cfg.warmup = 1;
    return run_overhead(cfg).mean_round;
  };
  EXPECT_LT(time_for(64 * KiB), time_for(16 * MiB));
}

TEST(Overhead, AggregationBeatsPersistentAtMediumSizes) {
  // The paper's core claim, as a regression test: at 128 KiB with 32
  // partitions the PLogGP aggregator must beat the UCX-like baseline.
  OverheadConfig cfg;
  cfg.total_bytes = 128 * KiB;
  cfg.user_partitions = 32;
  cfg.iterations = 5;
  cfg.warmup = 1;
  cfg.options = persistent();
  const auto base = run_overhead(cfg).mean_round;
  cfg.options = ploggp();
  const auto ours = run_overhead(cfg).mean_round;
  EXPECT_GT(static_cast<double>(base) / static_cast<double>(ours), 1.5);
}

TEST(Perceived, AboveWireForMediumBelowForStreams) {
  PerceivedConfig cfg;
  cfg.total_bytes = 8 * MiB;
  cfg.user_partitions = 32;
  cfg.options = persistent();
  cfg.iterations = 3;
  cfg.warmup = 1;
  const auto r = run_perceived_bandwidth(cfg);
  // Early-bird: perceived bandwidth well above the physical wire.
  EXPECT_GT(r.mean_gbytes_per_s, r.wire_gbytes_per_s * 2);
  EXPECT_GT(r.min_gbytes_per_s, 0.0);
  EXPECT_GE(r.max_gbytes_per_s, r.mean_gbytes_per_s);
}

TEST(Perceived, PlogGPBelowPersistent) {
  // Aggregation enlarges the laggard's message: Fig 9's ordering.
  PerceivedConfig cfg;
  cfg.total_bytes = 8 * MiB;
  cfg.user_partitions = 32;
  cfg.iterations = 3;
  cfg.warmup = 1;
  cfg.options = persistent();
  const double p = run_perceived_bandwidth(cfg).mean_gbytes_per_s;
  cfg.options = ploggp();
  const double a = run_perceived_bandwidth(cfg).mean_gbytes_per_s;
  EXPECT_GT(p, a);
}

TEST(Perceived, TimerRecoversTowardPersistent) {
  PerceivedConfig cfg;
  cfg.total_bytes = 8 * MiB;
  cfg.user_partitions = 32;
  cfg.iterations = 3;
  cfg.warmup = 1;
  cfg.options = ploggp();
  const double plain = run_perceived_bandwidth(cfg).mean_gbytes_per_s;
  cfg.options = test::timer_options(usec(100));
  const double timer = run_perceived_bandwidth(cfg).mean_gbytes_per_s;
  EXPECT_GT(timer, plain * 2);
}

TEST(Perceived, ProfilerReceivesTimelines) {
  prof::PartProfiler profiler(16);
  PerceivedConfig cfg;
  cfg.total_bytes = 1 * MiB;
  cfg.user_partitions = 16;
  cfg.options = ploggp();
  cfg.iterations = 2;
  cfg.warmup = 1;
  cfg.profiler = &profiler;
  (void)run_perceived_bandwidth(cfg);
  ASSERT_EQ(profiler.rounds().size(), 2u);
  for (const auto& round : profiler.rounds()) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_GE(round.pready_times[i], round.start_time);
      EXPECT_GE(round.arrival_times[i], round.pready_times[i]);
    }
  }
}

TEST(Sweep, SmallGridCompletes) {
  SweepConfig cfg;
  cfg.px = 3;
  cfg.py = 3;
  cfg.threads = 4;
  cfg.message_bytes = 64 * KiB;
  cfg.options = ploggp();
  cfg.compute = usec(100);
  cfg.noise = 0.04;
  cfg.iterations = 3;
  cfg.warmup = 1;
  const auto r = run_sweep(cfg);
  EXPECT_GT(r.total_time, 0);
  EXPECT_GT(r.comm_time, 0);
  EXPECT_EQ(r.compute_on_path, 3 * usec(100));
  EXPECT_EQ(r.total_time, r.comm_time + r.compute_on_path);
}

TEST(Sweep, DegenerateSingleRankGrid) {
  SweepConfig cfg;
  cfg.px = 1;
  cfg.py = 1;
  cfg.threads = 4;
  cfg.message_bytes = 4 * KiB;
  cfg.options = ploggp();
  cfg.compute = usec(50);
  cfg.noise = 0.0;
  cfg.iterations = 2;
  cfg.warmup = 1;
  const auto r = run_sweep(cfg);  // no channels at all: pure compute
  EXPECT_GT(r.total_time, 0);
}

TEST(Sweep, SingleRowPipeline) {
  SweepConfig cfg;
  cfg.px = 4;
  cfg.py = 1;
  cfg.threads = 2;
  cfg.message_bytes = 16 * KiB;
  cfg.options = persistent();
  cfg.compute = usec(100);
  cfg.noise = 0.01;
  cfg.iterations = 2;
  cfg.warmup = 1;
  const auto r = run_sweep(cfg);
  EXPECT_GT(r.comm_time, 0);
}

TEST(Sweep, DeterministicForSameSeed) {
  SweepConfig cfg;
  cfg.px = 2;
  cfg.py = 2;
  cfg.threads = 4;
  cfg.message_bytes = 64 * KiB;
  cfg.options = ploggp();
  cfg.compute = usec(200);
  cfg.noise = 0.04;
  cfg.iterations = 2;
  cfg.warmup = 1;
  EXPECT_EQ(run_sweep(cfg).total_time, run_sweep(cfg).total_time);
}

TEST(Probe, RecoversEffectivePerByteCost) {
  const auto params = fabric::NicParams::connectx5_edr();
  const auto probe = run_parameter_probe(params);
  // The slope includes the per-QP engine share: G_eff = G / share.
  const double expected = params.wire.G / params.qp_bw_share;
  EXPECT_NEAR(probe.G, expected, expected * 0.02);
}

TEST(Probe, InterceptMatchesFixedCosts) {
  const auto params = fabric::NicParams::connectx5_edr();
  const auto probe = run_parameter_probe(params);
  const Duration expected = params.wire.g + params.wire.o_s +
                            params.wire.L + params.wire.o_r;
  EXPECT_NEAR(static_cast<double>(probe.intercept),
              static_cast<double>(expected),
              static_cast<double>(expected) * 0.05);
}

TEST(Probe, AsLoggpIsInternallyConsistent) {
  const auto probe = run_parameter_probe(fabric::NicParams::connectx5_edr());
  const auto p = probe.as_loggp();
  EXPECT_DOUBLE_EQ(p.G, probe.G);
  EXPECT_EQ(p.g, probe.gap);
  EXPECT_EQ(p.L + p.g, std::max<Duration>(probe.intercept, p.g));
}

TEST(Report, TableFormatsAndCsv) {
  Table t("demo", {"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,bb\n1,2\n333,4\n");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("333"), std::string::npos);
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace partib::bench
