// The fault plane (fabric/fault.hpp): deterministic seed-driven decisions,
// config fingerprinting, and the fabric-level error/flush/retransmit
// machinery they drive.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "fabric/fault.hpp"
#include "sim/engine.hpp"

namespace partib::fabric {
namespace {

FaultPlanConfig mixed_config(std::uint64_t seed = 42) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.drop_rate = 0.05;
  cfg.delay_rate = 0.10;
  cfg.rnr_rate = 0.03;
  cfg.retry_exc_rate = 0.03;
  cfg.qp_flush_rate = 0.02;
  return cfg;
}

TEST(FaultPlan, DisabledByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.decide(0).kind, FaultKind::kNone);
  FaultPlanConfig zero;
  EXPECT_FALSE(zero.enabled());
  EXPECT_FALSE(FaultPlan(zero).enabled());
}

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlan a{mixed_config()};
  FaultPlan b{mixed_config()};
  for (std::uint64_t op = 0; op < 4096; ++op) {
    const FaultDecision da = a.decide(op);
    const FaultDecision db = b.decide(op);
    EXPECT_EQ(da.kind, db.kind) << op;
    EXPECT_EQ(da.delay, db.delay) << op;
    EXPECT_EQ(da.drops, db.drops) << op;
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a{mixed_config(1)};
  FaultPlan b{mixed_config(2)};
  int differ = 0;
  for (std::uint64_t op = 0; op < 4096; ++op) {
    if (a.decide(op).kind != b.decide(op).kind) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultPlan, DecisionsAreOrderIndependent) {
  // decide(k) must not consult any other ordinal: querying out of order
  // and re-querying yields the same answers.
  FaultPlan plan{mixed_config()};
  std::vector<FaultKind> forward;
  for (std::uint64_t op = 0; op < 512; ++op) {
    forward.push_back(plan.decide(op).kind);
  }
  for (std::uint64_t op = 512; op-- > 0;) {
    EXPECT_EQ(plan.decide(op).kind, forward[op]) << op;
  }
}

TEST(FaultPlan, RatesApproximatelyHonoured) {
  FaultPlan plan{mixed_config()};
  std::map<FaultKind, int> counts;
  const int kOps = 20000;
  for (std::uint64_t op = 0; op < kOps; ++op) ++counts[plan.decide(op).kind];
  // All five shapes must occur, at roughly their configured rates.
  EXPECT_NEAR(counts[FaultKind::kDrop] / double(kOps), 0.05, 0.015);
  EXPECT_NEAR(counts[FaultKind::kDelay] / double(kOps), 0.10, 0.02);
  EXPECT_GT(counts[FaultKind::kRnrNak], 0);
  EXPECT_GT(counts[FaultKind::kRetryExceeded], 0);
  EXPECT_GT(counts[FaultKind::kQpFlush], 0);
  EXPECT_NEAR(counts[FaultKind::kNone] / double(kOps), 0.77, 0.03);
}

TEST(FaultPlan, DecisionParametersStayInRange) {
  FaultPlanConfig cfg = mixed_config();
  cfg.max_delay = usec(7);
  cfg.max_drops = 2;
  FaultPlan plan{cfg};
  for (std::uint64_t op = 0; op < 20000; ++op) {
    const FaultDecision d = plan.decide(op);
    if (d.kind == FaultKind::kDelay) {
      EXPECT_GE(d.delay, 1);
      EXPECT_LE(d.delay, usec(7));
    }
    if (d.kind == FaultKind::kDrop) {
      EXPECT_GE(d.drops, 1);
      EXPECT_LE(d.drops, 2);
    }
  }
}

TEST(FaultPlan, ZeroSeedDerivesFromConfigFingerprint) {
  FaultPlanConfig cfg = mixed_config(/*seed=*/0);
  FaultPlan a{cfg};
  FaultPlan b{cfg};
  EXPECT_NE(a.seed(), 0u);
  EXPECT_EQ(a.seed(), b.seed());
  // A different config derives a different seed.
  FaultPlanConfig other = cfg;
  other.drop_rate = 0.06;
  EXPECT_NE(FaultPlan(other).seed(), a.seed());
  EXPECT_NE(cfg.fingerprint(), other.fingerprint());
}

// --- fabric-level machinery --------------------------------------------------

struct FabricFx {
  sim::Engine engine;
  Fabric fab{engine, NicParams::connectx5_edr(), /*copy_data=*/false};
  NodeId n0 = fab.add_node();
  NodeId n1 = fab.add_node();

  RdmaOp op(std::uint64_t qp, int* completions, int* failures) {
    RdmaOp o;
    o.src = n0;
    o.dst = n1;
    o.src_qp = qp;
    o.bytes = 4096;
    o.on_send_complete = [completions](Time) { ++*completions; };
    o.on_failed = [failures](Time, OpFailure) { ++*failures; };
    return o;
  }
};

TEST(FabricFaults, InjectQpErrorFlushesQueuedOpsInOrder) {
  FabricFx fx;
  int completions = 0;
  std::vector<OpFailure> failures;
  for (int i = 0; i < 5; ++i) {
    RdmaOp o = fx.op(7, &completions, nullptr);
    o.on_failed = [&failures](Time, OpFailure f) { failures.push_back(f); };
    fx.fab.post_rdma_write(std::move(o));
  }
  fx.fab.inject_qp_error(7);
  fx.engine.run();
  // The op already on the wire completes; the four queued ones flush.
  EXPECT_EQ(completions, 1);
  ASSERT_EQ(failures.size(), 4u);
  for (OpFailure f : failures) EXPECT_EQ(f, OpFailure::kFlushed);
  EXPECT_EQ(fx.fab.stats().failed_ops, 4u);
  EXPECT_TRUE(fx.fab.qp_chain_errored(7));
}

TEST(FabricFaults, ErroredChainFailsNewPostsUntilReset) {
  FabricFx fx;
  int completions = 0;
  int failures = 0;
  fx.fab.inject_qp_error(9);
  fx.fab.post_rdma_write(fx.op(9, &completions, &failures));
  fx.engine.run();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(failures, 1);

  fx.fab.reset_qp_chain(9);
  EXPECT_FALSE(fx.fab.qp_chain_errored(9));
  fx.fab.post_rdma_write(fx.op(9, &completions, &failures));
  fx.engine.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(failures, 1);
}

TEST(FabricFaults, DropRetransmitsAndEventuallyDelivers) {
  FabricFx fx;
  FaultPlanConfig cfg;
  cfg.seed = 3;
  cfg.drop_rate = 1.0;  // every op drops at least once
  fx.fab.set_fault_plan(FaultPlan{cfg});
  int completions = 0;
  int failures = 0;
  for (int i = 0; i < 8; ++i) {
    fx.fab.post_rdma_write(fx.op(4, &completions, &failures));
  }
  fx.engine.run();
  EXPECT_EQ(completions, 8);  // drops retransmit, never fail
  EXPECT_EQ(failures, 0);
  EXPECT_GE(fx.fab.stats().retransmits, 8u);
  EXPECT_EQ(fx.fab.stats().faults_injected, 8u);
}

TEST(FabricFaults, RetryExceededFailsWithoutDelivering) {
  FabricFx fx;
  FaultPlanConfig cfg;
  cfg.seed = 5;
  cfg.retry_exc_rate = 1.0;
  fx.fab.set_fault_plan(FaultPlan{cfg});
  int completions = 0;
  std::vector<OpFailure> failures;
  RdmaOp o = fx.op(2, &completions, nullptr);
  bool moved = false;
  o.move_data = [&moved] { moved = true; };
  o.on_failed = [&failures](Time, OpFailure f) { failures.push_back(f); };
  fx.fab.post_rdma_write(std::move(o));
  fx.engine.run();
  EXPECT_EQ(completions, 0);
  EXPECT_FALSE(moved);  // a failed op never lands
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0], OpFailure::kRetryExceeded);
}

TEST(FabricFaults, QpFlushFaultWedgesTheChain) {
  FabricFx fx;
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.qp_flush_rate = 1.0;
  fx.fab.set_fault_plan(FaultPlan{cfg});
  int completions = 0;
  int failures = 0;
  for (int i = 0; i < 3; ++i) {
    fx.fab.post_rdma_write(fx.op(6, &completions, &failures));
  }
  fx.engine.run();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(failures, 3);  // first op flushes the chain; rest flush behind it
  EXPECT_TRUE(fx.fab.qp_chain_errored(6));
}

TEST(FabricFaults, InertPlanKeepsStatsClean) {
  FabricFx fx;
  fx.fab.set_fault_plan(FaultPlan{FaultPlanConfig{}});
  int completions = 0;
  int failures = 0;
  for (int i = 0; i < 16; ++i) {
    fx.fab.post_rdma_write(fx.op(1, &completions, &failures));
  }
  fx.engine.run();
  EXPECT_EQ(completions, 16);
  EXPECT_EQ(fx.fab.stats().faults_injected, 0u);
  EXPECT_EQ(fx.fab.stats().retransmits, 0u);
  EXPECT_EQ(fx.fab.stats().failed_ops, 0u);
}

}  // namespace
}  // namespace partib::fabric
