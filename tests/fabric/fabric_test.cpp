// The RDMA pipeline: WQE gating, QP ordering, activation, MTU accounting,
// delivery/completion timing, and the control plane.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"

namespace partib::fabric {
namespace {

NicParams test_params() {
  NicParams p = NicParams::connectx5_edr();
  // Round numbers make the timing arithmetic below exact.
  p.wire.G = 0.1;  // 10 B/ns
  p.wire.L = 1000;
  p.wire.o_s = 100;
  p.wire.o_r = 150;
  p.wire.g = 50;
  p.qp_activation = 500;
  p.segment_header_bytes = 0;  // isolate payload timing
  p.qp_bw_share = 1.0;
  return p;
}

struct Fx {
  sim::Engine engine;
  Fabric fab;
  NodeId a, b;

  explicit Fx(NicParams p = test_params())
      : fab(engine, p, /*copy_data=*/true) {
    a = fab.add_node();
    b = fab.add_node();
  }

  RdmaOp op(std::size_t bytes, std::uint64_t qp, Time* send_done,
            Time* recv_done) {
    RdmaOp o;
    o.src = a;
    o.dst = b;
    o.src_qp = qp;
    o.bytes = bytes;
    o.on_send_complete = [send_done](Time t) {
      if (send_done) *send_done = t;
    };
    if (recv_done) {
      o.on_recv_complete = [recv_done](Time t) { *recv_done = t; };
    }
    return o;
  }
};

TEST(Fabric, SingleWriteTiming) {
  Fx fx;
  Time send_done = -1, recv_done = -1;
  fx.fab.post_rdma_write(fx.op(1000, 1, &send_done, &recv_done));
  fx.engine.run();
  // WQE g(50) + activation(500) + o_s(100) + wire 1000B/10Bns(100)
  // = 750 wire end; landing +L(1000) = 1750; recv CQE +o_r(150) = 1900;
  // send CQE at landing + L = 2750.
  EXPECT_EQ(recv_done, 1900);
  EXPECT_EQ(send_done, 2750);
}

TEST(Fabric, ActivationChargedOnlyOnce) {
  Fx fx;
  Time first = -1, second = -1;
  fx.fab.post_rdma_write(fx.op(1000, 1, nullptr, &first));
  fx.engine.run();
  fx.fab.post_rdma_write(fx.op(1000, 1, nullptr, &second));
  fx.engine.run();
  // Second WR: starts at now=2750 (send CQE drained queue), no activation.
  // Relative cost: g + o_s + wire + L + o_r = 50+100+100+1000+150 = 1400.
  EXPECT_EQ(second - 2750, 1400);
  EXPECT_EQ(first, 1900);
}

TEST(Fabric, SameQpOrdersWires) {
  // Two back-to-back writes on one QP: the second's wire starts after the
  // first's wire end.
  Fx fx;
  Time r1 = -1, r2 = -1;
  fx.fab.post_rdma_write(fx.op(10'000, 1, nullptr, &r1));
  fx.fab.post_rdma_write(fx.op(10'000, 1, nullptr, &r2));
  fx.engine.run();
  ASSERT_GT(r1, 0);
  // Wire time per message = 1000ns; second lands ~1000ns after first
  // (chain), not concurrently.
  EXPECT_GE(r2 - r1, 1000);
}

TEST(Fabric, DifferentQpsOverlap) {
  Fx fx;
  Time r1 = -1, r2 = -1;
  fx.fab.post_rdma_write(fx.op(10'000, 1, nullptr, &r1));
  fx.fab.post_rdma_write(fx.op(10'000, 2, nullptr, &r2));
  fx.engine.run();
  // Link is shared (each at half rate while both active) but QP-chain
  // serialization is absent: both finish well before 2x the serial time.
  EXPECT_LT(r2 - r1, 1000);
}

TEST(Fabric, RecvCompletionBeforeSendCompletion) {
  // RC semantics: receiver sees data (landing + o_r) before the sender's
  // CQE (landing + ACK latency), given o_r < L.
  Fx fx;
  Time send_done = -1, recv_done = -1;
  fx.fab.post_rdma_write(fx.op(64, 1, &send_done, &recv_done));
  fx.engine.run();
  EXPECT_LT(recv_done, send_done);
}

TEST(Fabric, MoveDataRunsAtLandingBeforeRecvCqe) {
  Fx fx;
  Time moved_at = -1, recv_done = -1;
  RdmaOp o = fx.op(1000, 1, nullptr, &recv_done);
  o.move_data = [&] { moved_at = fx.engine.now(); };
  fx.fab.post_rdma_write(std::move(o));
  fx.engine.run();
  EXPECT_EQ(moved_at, 1750);
  EXPECT_EQ(recv_done, moved_at + 150);
}

TEST(Fabric, WireBytesAddSegmentHeaders) {
  NicParams p = test_params();
  p.segment_header_bytes = 30;
  p.mtu = 4096;
  Fx fx(p);
  EXPECT_EQ(fx.fab.wire_bytes_for(0), 30u);
  EXPECT_EQ(fx.fab.wire_bytes_for(1), 31u);
  EXPECT_EQ(fx.fab.wire_bytes_for(4096), 4096u + 30u);
  EXPECT_EQ(fx.fab.wire_bytes_for(4097), 4097u + 60u);
  EXPECT_EQ(fx.fab.wire_bytes_for(16 * 4096), 16u * 4096u + 16u * 30u);
}

TEST(Fabric, QpBandwidthShareCapsSingleQp) {
  NicParams p = test_params();
  p.qp_bw_share = 0.5;
  Fx fx(p);
  Time recv_done = -1;
  fx.fab.post_rdma_write(fx.op(10'000, 1, nullptr, &recv_done));
  fx.engine.run();
  // Wire time doubles: 2000 instead of 1000.
  // g(50)+act(500)+o_s(100)+2000+L(1000)+o_r(150) = 3800.
  EXPECT_EQ(recv_done, 3800);
}

TEST(Fabric, WqeEngineGapsSerializeAcrossQps) {
  // The WQE engine is NIC-wide: even WRs on different QPs are injected at
  // least g apart.
  NicParams p = test_params();
  p.qp_activation = 0;
  Fx fx(p);
  std::vector<Time> recvs(2, -1);
  for (std::uint64_t q = 0; q < 2; ++q) {
    RdmaOp o = fx.op(10, q + 1, nullptr, nullptr);
    o.on_recv_complete = [&recvs, q](Time t) {
      recvs[static_cast<std::size_t>(q)] = t;
    };
    fx.fab.post_rdma_write(std::move(o));
  }
  fx.engine.run();
  EXPECT_EQ(recvs[1] - recvs[0], 50);  // exactly one WQE gap apart
}

TEST(Fabric, ControlMessageLatency) {
  Fx fx;
  Time delivered = -1;
  fx.fab.send_control(fx.a, fx.b, [&] { delivered = fx.engine.now(); });
  fx.engine.run();
  EXPECT_EQ(delivered, test_params().wire.L + test_params().ctrl_overhead);
}

TEST(Fabric, StatsAccumulate) {
  Fx fx;
  fx.fab.post_rdma_write(fx.op(1000, 1, nullptr, nullptr));
  fx.fab.post_rdma_write(fx.op(2000, 1, nullptr, nullptr));
  fx.fab.send_control(fx.a, fx.b, [] {});
  fx.engine.run();
  EXPECT_EQ(fx.fab.stats().rdma_ops, 2u);
  EXPECT_EQ(fx.fab.stats().payload_bytes, 3000u);
  EXPECT_EQ(fx.fab.stats().control_msgs, 1u);
}

TEST(Fabric, RateCapFactorSlowsWire) {
  Fx fx;
  Time normal = -1;
  fx.fab.post_rdma_write(fx.op(10'000, 1, nullptr, &normal));
  fx.engine.run();
  const Time t0 = fx.engine.now();
  RdmaOp slow = fx.op(10'000, 1, nullptr, nullptr);
  Time slow_done = -1;
  slow.rate_cap_factor = 0.5;
  slow.on_recv_complete = [&](Time t) { slow_done = t; };
  fx.fab.post_rdma_write(std::move(slow));
  fx.engine.run();
  // Slow transfer's wire time is 2000 vs 1000: relative latency is
  // 50+100+2000+1000+150 = 3300.
  EXPECT_EQ(slow_done - t0, 3300);
}

}  // namespace
}  // namespace partib::fabric
