// Heterogeneous link capacities in the fluid network.
#include <gtest/gtest.h>

#include "fabric/fluid_network.hpp"
#include "sim/engine.hpp"

namespace partib::fabric {
namespace {

TEST(Hetero, SlowNodeEgressLimitsItsFlow) {
  sim::Engine engine;
  FluidNetwork net(engine, 10.0);
  net.set_node_count(4);
  net.set_node_capacity(0, /*egress=*/2.0, /*ingress=*/10.0);
  Time slow = -1, fast = -1;
  net.submit(0, 1, 1000.0, 100.0, [&](Time t) { slow = t; });
  net.submit(2, 3, 1000.0, 100.0, [&](Time t) { fast = t; });
  engine.run();
  EXPECT_EQ(slow, 500);  // 2 B/ns egress
  EXPECT_EQ(fast, 100);  // untouched
}

TEST(Hetero, SlowIngressThrottlesFanIn) {
  sim::Engine engine;
  FluidNetwork net(engine, 10.0);
  net.set_node_count(3);
  net.set_node_capacity(0, 10.0, /*ingress=*/4.0);
  std::vector<Time> ends;
  net.submit(1, 0, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  net.submit(2, 0, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  engine.run();
  // 2 flows share 4 B/ns ingress: each at 2 B/ns.
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 500);
  EXPECT_EQ(ends[1], 500);
}

TEST(Hetero, FastNodeCanExceedDefaultRate) {
  sim::Engine engine;
  FluidNetwork net(engine, 10.0);
  net.set_node_count(2);
  net.set_node_capacity(0, 40.0, 40.0);
  net.set_node_capacity(1, 40.0, 40.0);
  Time end = -1;
  net.submit(0, 1, 1000.0, 100.0, [&](Time t) { end = t; });
  engine.run();
  EXPECT_EQ(end, 25);  // 40 B/ns end to end
}

TEST(Hetero, MaxMinStillFairUnderMixedCaps) {
  // Slow egress (3) feeding node 2 alongside a fast sender: the fast
  // sender takes the residual ingress.
  sim::Engine engine;
  FluidNetwork net(engine, 10.0);
  net.set_node_count(3);
  net.set_node_capacity(0, 3.0, 10.0);
  Time slow = -1, fast = -1;
  net.submit(0, 2, 3000.0, 100.0, [&](Time t) { slow = t; });
  net.submit(1, 2, 7000.0, 100.0, [&](Time t) { fast = t; });
  engine.run();
  // Progressive filling: both raised to 3 (node 0 saturates at 3), flow 1
  // continues to 7 (ingress of node 2 saturates at 10).
  EXPECT_EQ(slow, 1000);  // 3000 / 3
  EXPECT_EQ(fast, 1000);  // 7000 / 7
}

}  // namespace
}  // namespace partib::fabric
