// Fluid-network conservation and differential checks.
//
// The allocation-free FluidNetwork rewrite must be observationally
// identical to the original std::map implementation
// (tests/support/reference_fluid_network.hpp): identical completion times
// for identical workloads.  Independently, the model must conserve bytes —
// integrating each flow's allocated rate over virtual time accounts for
// exactly the bytes submitted (up to the 1 ns completion-event
// quantization) — and every rate allocation must respect the per-flow cap
// and the per-node egress/ingress capacities at all times, probed through
// FluidNetwork::for_each_flow at every rate-change point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "fabric/fluid_network.hpp"
#include "sim/engine.hpp"
#include "support/reference_fluid_network.hpp"

namespace partib::fabric {
namespace {

constexpr double kCap = 10.0;  // bytes per ns
constexpr int kNodes = 8;

struct Submission {
  Time at;
  NodeId src;
  NodeId dst;
  double bytes;
  double cap;
};

std::vector<Submission> make_workload(std::uint64_t seed, std::size_t count,
                                      bool allow_degenerate) {
  std::mt19937_64 rng(seed);
  std::vector<Submission> w;
  w.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Submission s;
    s.at = static_cast<Time>(rng() % 2000);
    s.src = static_cast<NodeId>(rng() % kNodes);
    s.dst = static_cast<NodeId>(rng() % kNodes);
    if (!allow_degenerate && s.dst == s.src) {
      s.dst = (s.src + 1) % kNodes;
    }
    s.bytes = allow_degenerate && rng() % 8 == 0
                  ? 0.0
                  : static_cast<double>(1 + rng() % 50000);
    s.cap = 0.5 + static_cast<double>(rng() % 400) / 10.0;
    w.push_back(s);
  }
  return w;
}

template <typename NetT>
std::vector<Time> completion_times(const std::vector<Submission>& w) {
  sim::Engine engine;
  NetT net(engine, kCap);
  net.set_node_count(kNodes);
  net.set_node_capacity(1, 4.0, 12.0);  // one slow-egress, fat-ingress node
  net.set_node_capacity(5, 25.0, 3.0);  // one fat-egress, slow-ingress node
  std::vector<Time> ends(w.size(), -1);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const Submission& s = w[i];
    engine.schedule_at(s.at, [&net, &ends, &s, i] {
      net.submit(s.src, s.dst, s.bytes, s.cap,
                 [&ends, i](Time end) { ends[i] = end; });
    });
  }
  engine.run();
  return ends;
}

TEST(FluidConservation, CompletionTimesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto w = make_workload(0xf10d + seed, 40, /*allow_degenerate=*/true);
    const auto prod = completion_times<FluidNetwork>(w);
    const auto ref = completion_times<test::ReferenceFluidNetwork>(w);
    ASSERT_EQ(prod.size(), ref.size());
    for (std::size_t i = 0; i < prod.size(); ++i) {
      EXPECT_EQ(prod[i], ref[i]) << "seed " << seed << " flow " << i << " ("
                                 << w[i].src << "->" << w[i].dst << ", "
                                 << w[i].bytes << " B)";
    }
  }
}

// Tracks one flow's delivered bytes by integrating its allocated rate over
// the piecewise-constant segments between rate-change points.  Flows are
// identified by their unique (src, dst) pair.
struct Tracked {
  Submission sub;
  double delivered = 0.0;
  double last_rate = 0.0;
  Time last_t = 0;
  Time end = -1;
  bool finished = false;
};

class ConservationProbe {
 public:
  ConservationProbe(sim::Engine& engine, FluidNetwork& net,
                    std::vector<Tracked>& flows)
      : engine_(engine), net_(net), flows_(flows) {}

  // Call at every rate-change point (right after a submit returns, and
  // inside every completion callback): closes the segment that just ended
  // for every tracked flow, checks capacity invariants, then records the
  // new rates.
  void observe() {
    const Time now = engine_.now();
    for (Tracked& f : flows_) {
      if (f.finished || f.last_t > now) continue;
      f.delivered += f.last_rate * static_cast<double>(now - f.last_t);
      f.last_t = now;
      f.last_rate = 0.0;  // refreshed below if still active
    }
    std::vector<double> egress_sum(kNodes, 0.0);
    std::vector<double> ingress_sum(kNodes, 0.0);
    net_.for_each_flow([&](const FluidNetwork::FlowView& v) {
      EXPECT_GE(v.rate, 0.0);
      EXPECT_LE(v.rate, v.cap + kEps);
      EXPECT_GE(v.remaining, 0.0);
      egress_sum[static_cast<std::size_t>(v.src)] += v.rate;
      ingress_sum[static_cast<std::size_t>(v.dst)] += v.rate;
      for (Tracked& f : flows_) {
        if (!f.finished && f.sub.src == v.src && f.sub.dst == v.dst) {
          f.last_rate = v.rate;
          // The network's own progress accounting must agree with the
          // integral (loose tolerance absorbs float reassociation across
          // intermediate drains).
          EXPECT_NEAR(f.sub.bytes - f.delivered, v.remaining, 1.0)
              << "flow " << v.src << "->" << v.dst;
        }
      }
    });
    for (int n = 0; n < kNodes; ++n) {
      EXPECT_LE(egress_sum[static_cast<std::size_t>(n)],
                egress_cap(n) + kEps)
          << "egress overcommitted at node " << n;
      EXPECT_LE(ingress_sum[static_cast<std::size_t>(n)],
                ingress_cap(n) + kEps)
          << "ingress overcommitted at node " << n;
    }
  }

  // Mirrors the set_node_capacity overrides the tests install.
  static double egress_cap(int node) {
    if (node == 1) return 4.0;
    if (node == 5) return 25.0;
    return kCap;
  }
  static double ingress_cap(int node) {
    if (node == 1) return 12.0;
    if (node == 5) return 3.0;
    return kCap;
  }

 private:
  static constexpr double kEps = 1e-6;

  sim::Engine& engine_;
  FluidNetwork& net_;
  std::vector<Tracked>& flows_;
};

TEST(FluidConservation, EveryFlowDeliversItsBytes) {
  std::mt19937_64 rng(0xb17e5);
  // Distinct (src, dst) pairs so flows are identifiable through FlowView.
  std::vector<Tracked> flows;
  for (int src = 0; src < kNodes; ++src) {
    for (int dst = 0; dst < kNodes; ++dst) {
      if (src == dst) continue;
      if (rng() % 2 == 0) continue;  // keep ~half the pairs
      Tracked t;
      t.sub.at = static_cast<Time>(rng() % 1500);
      t.sub.src = src;
      t.sub.dst = dst;
      t.sub.bytes = static_cast<double>(100 + rng() % 40000);
      t.sub.cap = 0.5 + static_cast<double>(rng() % 200) / 10.0;
      flows.push_back(t);
    }
  }
  ASSERT_GE(flows.size(), 20u);

  sim::Engine engine;
  FluidNetwork net(engine, kCap);
  net.set_node_count(kNodes);
  net.set_node_capacity(1, 4.0, 12.0);
  net.set_node_capacity(5, 25.0, 3.0);
  ConservationProbe probe(engine, net, flows);

  for (Tracked& f : flows) {
    engine.schedule_at(f.sub.at, [&engine, &net, &probe, &f] {
      net.submit(f.sub.src, f.sub.dst, f.sub.bytes, f.sub.cap,
                 [&probe, &f](Time end) {
                   // Rates were already recomputed for the survivors when
                   // this callback runs, so observing here both finalizes
                   // this flow's integral and opens the survivors' next
                   // segment.
                   probe.observe();
                   f.end = end;
                   f.finished = true;
                 });
      f.last_t = engine.now();
      probe.observe();
    });
  }
  engine.run();

  for (const Tracked& f : flows) {
    ASSERT_TRUE(f.finished) << f.sub.src << "->" << f.sub.dst;
    // The completion event fires at ceil(remaining / rate), so the
    // integral may overshoot by up to one ns worth of the flow's final
    // rate; the finish threshold (half a byte) bounds the undershoot.
    const double max_rate =
        std::min({f.sub.cap, ConservationProbe::egress_cap(f.sub.src),
                  ConservationProbe::ingress_cap(f.sub.dst)});
    EXPECT_GE(f.delivered, f.sub.bytes - 0.5)
        << f.sub.src << "->" << f.sub.dst;
    EXPECT_LE(f.delivered, f.sub.bytes + max_rate + 0.5)
        << f.sub.src << "->" << f.sub.dst;
    // Lower bound on wire time: the flow can never beat its best rate.
    EXPECT_GE(f.end, f.sub.at + static_cast<Time>(f.sub.bytes / max_rate))
        << f.sub.src << "->" << f.sub.dst;
  }
}

}  // namespace
}  // namespace partib::fabric
