// Max-min fluid network: rate caps, link sharing, fan-in, and conservation
// properties.
#include <gtest/gtest.h>

#include <vector>

#include "fabric/fluid_network.hpp"
#include "sim/engine.hpp"

namespace partib::fabric {
namespace {

constexpr double kCap = 10.0;  // bytes per ns

class Net : public ::testing::Test {
 protected:
  sim::Engine engine;
  FluidNetwork net{engine, kCap};
  void SetUp() override { net.set_node_count(8); }
};

TEST_F(Net, SingleFlowRunsAtItsCap) {
  Time end = -1;
  net.submit(0, 1, /*bytes=*/1000.0, /*cap=*/5.0, [&](Time t) { end = t; });
  engine.run();
  EXPECT_EQ(end, 200);  // 1000 / 5
}

TEST_F(Net, SingleFlowLimitedByLink) {
  Time end = -1;
  net.submit(0, 1, 1000.0, /*cap=*/100.0, [&](Time t) { end = t; });
  engine.run();
  EXPECT_EQ(end, 100);  // 1000 / 10
}

TEST_F(Net, TwoFlowsShareEgressFairly) {
  std::vector<Time> ends;
  net.submit(0, 1, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  net.submit(0, 2, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  engine.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 200);  // each at 5 B/ns
  EXPECT_EQ(ends[1], 200);
}

TEST_F(Net, FanInSharesIngress) {
  std::vector<Time> ends;
  net.submit(1, 0, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  net.submit(2, 0, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  engine.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 200);
  EXPECT_EQ(ends[1], 200);
}

TEST_F(Net, DisjointPairsDoNotInterfere) {
  std::vector<Time> ends;
  net.submit(0, 1, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  net.submit(2, 3, 1000.0, 100.0, [&](Time t) { ends.push_back(t); });
  engine.run();
  for (Time t : ends) EXPECT_EQ(t, 100);
}

TEST_F(Net, CappedFlowLeavesHeadroomForOthers) {
  // Flow A capped at 2 B/ns; flow B (same egress) may use the remaining 8.
  Time a = -1, b = -1;
  net.submit(0, 1, 1000.0, 2.0, [&](Time t) { a = t; });
  net.submit(0, 2, 1000.0, 100.0, [&](Time t) { b = t; });
  engine.run();
  EXPECT_EQ(a, 500);  // 1000 / 2
  EXPECT_EQ(b, 125);  // 1000 / 8
}

TEST_F(Net, DepartureSpeedsUpSurvivor) {
  // Equal shares until the short flow drains, then the long one gets the
  // full link: 500 bytes at 5 => t=100; remaining 1500 at 10 => +150.
  Time long_end = -1;
  net.submit(0, 1, 2000.0, 100.0, [&](Time t) { long_end = t; });
  net.submit(0, 2, 500.0, 100.0, [](Time) {});
  engine.run();
  EXPECT_EQ(long_end, 250);
}

TEST_F(Net, LateArrivalSlowsExisting) {
  // Flow A alone for 100ns (1000 bytes done), then B arrives; both at 5.
  Time a = -1, b = -1;
  net.submit(0, 1, 2000.0, 100.0, [&](Time t) { a = t; });
  engine.schedule_at(100, [&] {
    net.submit(0, 2, 1000.0, 100.0, [&](Time t) { b = t; });
  });
  engine.run();
  EXPECT_EQ(a, 300);  // 1000 left at rate 5 => +200
  EXPECT_EQ(b, 300);  // 1000 at rate 5
}

TEST_F(Net, ZeroByteFlowCompletesImmediately) {
  Time end = -1;
  net.submit(0, 1, 0.0, 1.0, [&](Time t) { end = t; });
  engine.run();
  EXPECT_EQ(end, 0);
}

TEST_F(Net, LoopbackBypassesLink) {
  Time loop = -1, wire = -1;
  net.submit(0, 0, 1000.0, 2.0, [&](Time t) { loop = t; });
  net.submit(0, 1, 1000.0, 100.0, [&](Time t) { wire = t; });
  engine.run();
  EXPECT_EQ(loop, 500);  // cap-limited only
  EXPECT_EQ(wire, 100);  // full link despite the loopback flow
}

TEST_F(Net, CompletionCallbackMaySubmit) {
  Time second = -1;
  net.submit(0, 1, 1000.0, 100.0, [&](Time) {
    net.submit(0, 1, 1000.0, 100.0, [&](Time t) { second = t; });
  });
  engine.run();
  EXPECT_EQ(second, 200);
}

TEST_F(Net, ManyFlowsConservation) {
  // N flows from distinct sources into one sink: aggregate throughput is
  // exactly the sink's ingress capacity, so total time = total bytes / C.
  std::vector<Time> ends;
  constexpr int kFlows = 6;
  for (int i = 1; i <= kFlows; ++i) {
    net.submit(i, 0, 600.0, 100.0, [&](Time t) { ends.push_back(t); });
  }
  engine.run();
  ASSERT_EQ(ends.size(), static_cast<std::size_t>(kFlows));
  for (Time t : ends) EXPECT_EQ(t, 360);  // 3600 bytes / 10 B/ns
}

TEST_F(Net, CompletedFlowsCounter) {
  net.submit(0, 1, 10.0, 1.0, [](Time) {});
  net.submit(0, 1, 10.0, 1.0, [](Time) {});
  engine.run();
  EXPECT_EQ(net.completed_flows(), 2u);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(Net, AsymmetricBytesFinishInSizeOrder) {
  std::vector<int> order;
  net.submit(0, 1, 100.0, 100.0, [&](Time) { order.push_back(0); });
  net.submit(0, 2, 10'000.0, 100.0, [&](Time) { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace partib::fabric
