// Per-operation lifecycle tracing.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "fabric/trace.hpp"
#include "sim/engine.hpp"
#include "support/test_world.hpp"

namespace partib::fabric {
namespace {

struct TraceFx {
  sim::Engine engine;
  Fabric fab{engine, NicParams::connectx5_edr(), /*copy=*/false};
  TraceSink sink;
  NodeId a, b;

  TraceFx() {
    a = fab.add_node();
    b = fab.add_node();
    fab.set_trace(&sink);
  }

  void post(std::size_t bytes, std::uint64_t qp, bool with_recv = true) {
    RdmaOp op;
    op.src = a;
    op.dst = b;
    op.src_qp = qp;
    op.bytes = bytes;
    op.on_send_complete = [](Time) {};
    if (with_recv) op.on_recv_complete = [](Time) {};
    fab.post_rdma_write(std::move(op));
  }
};

TEST(Trace, RecordsFullLifecycleInOrder) {
  TraceFx fx;
  fx.post(64 * KiB, 1);
  fx.engine.run();
  ASSERT_EQ(fx.sink.size(), 1u);
  const TraceRecord& r = fx.sink.records()[0];
  EXPECT_EQ(r.bytes, 64 * KiB);
  EXPECT_EQ(r.src_qp, 1u);
  // Monotone pipeline timestamps.
  EXPECT_LE(r.posted, r.wqe_grant);
  EXPECT_LT(r.wqe_grant, r.wire_start);
  EXPECT_LT(r.wire_start, r.wire_end);
  EXPECT_LT(r.wire_end, r.landed);
  EXPECT_LT(r.landed, r.recv_cqe);
  EXPECT_LT(r.recv_cqe, r.send_cqe);
}

TEST(Trace, PlainWriteHasNoRecvCqe) {
  TraceFx fx;
  fx.post(4 * KiB, 1, /*with_recv=*/false);
  fx.engine.run();
  EXPECT_EQ(fx.sink.records()[0].recv_cqe, -1);
  EXPECT_GT(fx.sink.records()[0].send_cqe, 0);
}

TEST(Trace, WireTimeMatchesBandwidth) {
  TraceFx fx;
  fx.post(1 * MiB, 1);
  fx.engine.run();
  const TraceRecord& r = fx.sink.records()[0];
  const auto& nic = fx.fab.nic();
  const double expected = static_cast<double>(
                              fx.fab.wire_bytes_for(1 * MiB)) *
                          nic.wire.G / nic.qp_bw_share;
  EXPECT_NEAR(static_cast<double>(r.wire_time()), expected, expected * 0.01);
}

TEST(Trace, ByQpFilters) {
  TraceFx fx;
  fx.post(1024, 1);
  fx.post(1024, 2);
  fx.post(1024, 1);
  fx.engine.run();
  EXPECT_EQ(fx.sink.by_qp(1).size(), 2u);
  EXPECT_EQ(fx.sink.by_qp(2).size(), 1u);
  EXPECT_EQ(fx.sink.by_qp(9).size(), 0u);
}

TEST(Trace, SameQpWiresDoNotOverlap) {
  TraceFx fx;
  for (int i = 0; i < 4; ++i) fx.post(256 * KiB, 7);
  fx.engine.run();
  const auto ops = fx.sink.by_qp(7);
  ASSERT_EQ(ops.size(), 4u);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_GE(ops[i]->wire_start, ops[i - 1]->wire_end);
  }
}

TEST(Trace, CsvHasHeaderAndRows) {
  TraceFx fx;
  fx.post(512, 1);
  fx.engine.run();
  const std::string csv = fx.sink.to_csv();
  EXPECT_NE(csv.find("op,src,dst,qp,bytes"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1,1,512,"), std::string::npos);
}

TEST(Trace, EgressUtilisation) {
  TraceFx fx;
  fx.post(1 * MiB, 1);
  fx.engine.run();
  const TraceRecord& r = fx.sink.records()[0];
  // Over exactly the wire window, utilisation is 1; over a double-length
  // window it is ~0.5.
  EXPECT_DOUBLE_EQ(fx.sink.egress_utilisation(fx.a, r.wire_start, r.wire_end),
                   1.0);
  const Time window = 2 * (r.wire_end - r.wire_start);
  EXPECT_NEAR(fx.sink.egress_utilisation(fx.a, r.wire_start,
                                         r.wire_start + window),
              0.5, 0.01);
  EXPECT_DOUBLE_EQ(fx.sink.egress_utilisation(fx.b, 0, r.wire_end), 0.0);
}

TEST(Trace, DisabledSinkCostsNothing) {
  TraceFx fx;
  fx.fab.set_trace(nullptr);
  fx.post(1024, 1);
  fx.engine.run();
  EXPECT_EQ(fx.sink.size(), 0u);
}

TEST(Trace, EndToEndChannelTracesAggregation) {
  // Attach a sink to a partitioned channel's world: the WR count in the
  // trace must match the aggregation plan.
  test::ChannelFixture cfx(64 * KiB, 16, test::static_options(4, 2));
  TraceSink sink;
  cfx.world->fab().set_trace(&sink);
  cfx.run_round(1);
  ASSERT_EQ(sink.size(), 4u);  // 4 transport partitions
  for (const TraceRecord& r : sink.records()) {
    EXPECT_EQ(r.bytes, 16 * KiB);  // 4 user partitions of 4 KiB each
    EXPECT_GT(r.recv_cqe, 0);
  }
  cfx.world->fab().set_trace(nullptr);
}

}  // namespace
}  // namespace partib::fabric
