// Differential fuzz: the production bucketed-heap engine vs. the original
// std::map reference implementation (tests/support/reference_engine.hpp).
//
// The engine rewrite is only admissible if it is *observationally
// identical* to the map engine: same dispatch order, same sequence-number
// assignment, same observer stream, same cancel results.  This test
// replays >10k randomized schedule_at / schedule_after / cancel /
// run_until / step operations — including re-entrant scheduling and
// cancellation from inside callbacks — through both engines and asserts
// the full (time, seq, site) dispatch streams and the determinism-auditor
// fingerprints match event for event.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "sim/engine.hpp"
#include "support/reference_engine.hpp"

namespace partib::sim {
namespace {

constexpr const char* kSites[] = {"diff.alpha", "diff.beta", "diff.gamma",
                                  "diff.delta", nullptr};
constexpr std::size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);

// What a dispatched callback does: schedule more events (re-entrant) and
// possibly cancel a previously issued id.  Child plan indices are strictly
// smaller than the parent's, so every chain terminates.
struct ChildSpec {
  Time delta = 0;
  std::size_t plan = 0;
  std::size_t site = 0;
};

struct Plan {
  std::vector<ChildSpec> children;
  bool cancels = false;
  std::uint64_t cancel_pick = 0;
};

struct Op {
  enum Kind { kScheduleAt, kScheduleAfter, kCancel, kRunUntil, kStep };
  Kind kind = kScheduleAt;
  Time delta = 0;
  std::size_t plan = 0;
  std::size_t site = 0;
  std::uint64_t pick = 0;
};

struct Script {
  std::vector<Plan> plans;
  std::vector<Op> ops;
};

Script make_script(std::uint64_t seed, std::size_t num_ops) {
  std::mt19937_64 rng(seed);
  Script sc;
  constexpr std::size_t kNumPlans = 48;
  constexpr std::size_t kNumLeaves = 8;
  sc.plans.resize(kNumPlans);
  for (std::size_t i = kNumLeaves; i < kNumPlans; ++i) {
    Plan& p = sc.plans[i];
    const std::size_t kids = rng() % 3;
    for (std::size_t k = 0; k < kids; ++k) {
      p.children.push_back(ChildSpec{static_cast<Time>(rng() % 200),
                                     rng() % i, rng() % kNumSites});
    }
    p.cancels = rng() % 3 == 0;
    p.cancel_pick = rng();
  }
  sc.ops.reserve(num_ops);
  for (std::size_t i = 0; i < num_ops; ++i) {
    Op op;
    const std::uint64_t roll = rng() % 100;
    if (roll < 35) {
      op.kind = Op::kScheduleAt;
    } else if (roll < 55) {
      op.kind = Op::kScheduleAfter;
    } else if (roll < 75) {
      op.kind = Op::kCancel;
    } else if (roll < 90) {
      op.kind = Op::kRunUntil;
    } else {
      op.kind = Op::kStep;
    }
    op.delta = static_cast<Time>(rng() % 500);
    op.plan = rng() % sc.plans.size();
    op.site = rng() % kNumSites;
    op.pick = rng();
    sc.ops.push_back(op);
  }
  return sc;
}

struct Record {
  Time time;
  std::uint64_t seq;
  std::string site;

  bool operator==(const Record& o) const {
    return time == o.time && seq == o.seq && site == o.site;
  }
};

struct RunResult {
  std::vector<Record> stream;
  std::vector<bool> cancel_results;
  Time final_now = 0;
  std::uint64_t processed = 0;
  std::size_t pending = 0;
};

// Executes a script against one engine type.  Event ids are referenced by
// their issue index so the two engines' distinct EventId types never have
// to be compared directly; as long as the dispatch streams agree, the id
// lists stay index-aligned.
template <typename EngineT>
class Runner {
 public:
  explicit Runner(const Script& sc) : sc_(sc) {}

  RunResult run() {
    engine_.set_dispatch_observer(
        [this](Time t, std::uint64_t seq, const char* site) {
          result_.stream.push_back(
              Record{t, seq, site != nullptr ? site : "(null)"});
        });
    for (const Op& op : sc_.ops) apply(op);
    engine_.run();  // drain whatever is left
    result_.final_now = engine_.now();
    result_.processed = engine_.processed_count();
    result_.pending = engine_.pending();
    return std::move(result_);
  }

  // Same script, but fingerprinted through the determinism auditor (which
  // occupies the engine's single observer slot).
  std::uint64_t run_fingerprint() {
    check::DeterminismAuditor auditor;
    auditor.attach(engine_);
    for (const Op& op : sc_.ops) apply(op);
    engine_.run();
    const std::uint64_t fp = auditor.fingerprint();
    auditor.detach();
    return fp;
  }

 private:
  void apply(const Op& op) {
    switch (op.kind) {
      case Op::kScheduleAt:
        schedule(ChildSpec{op.delta, op.plan, op.site}, /*relative=*/false);
        break;
      case Op::kScheduleAfter:
        schedule(ChildSpec{op.delta, op.plan, op.site}, /*relative=*/true);
        break;
      case Op::kCancel:
        if (!ids_.empty()) {
          result_.cancel_results.push_back(
              engine_.cancel(ids_[op.pick % ids_.size()]));
        }
        break;
      case Op::kRunUntil:
        engine_.run_until(engine_.now() + op.delta);
        break;
      case Op::kStep:
        engine_.step();
        break;
    }
  }

  void schedule(const ChildSpec& spec, bool relative) {
    const std::size_t plan = spec.plan;
    auto cb = [this, plan] { on_fire(plan); };
    if (relative) {
      ids_.push_back(
          engine_.schedule_after(spec.delta, cb, kSites[spec.site]));
    } else {
      ids_.push_back(engine_.schedule_at(engine_.now() + spec.delta, cb,
                                         kSites[spec.site]));
    }
  }

  void on_fire(std::size_t plan_idx) {
    const Plan& p = sc_.plans[plan_idx];
    for (const ChildSpec& c : p.children) schedule(c, /*relative=*/false);
    if (p.cancels && !ids_.empty()) {
      result_.cancel_results.push_back(
          engine_.cancel(ids_[p.cancel_pick % ids_.size()]));
    }
  }

  const Script& sc_;
  EngineT engine_;
  std::vector<typename EngineT::EventId> ids_;
  RunResult result_;
};

TEST(EngineDifferential, RandomizedInterleavingsMatchReference) {
  constexpr std::size_t kRounds = 40;
  constexpr std::size_t kOpsPerRound = 256;  // 10240 top-level ops total
  for (std::size_t round = 0; round < kRounds; ++round) {
    const Script sc = make_script(0x5eed0000 + round, kOpsPerRound);

    const RunResult prod = Runner<Engine>(sc).run();
    const RunResult ref = Runner<test::ReferenceEngine>(sc).run();

    ASSERT_EQ(prod.stream.size(), ref.stream.size()) << "round " << round;
    for (std::size_t i = 0; i < prod.stream.size(); ++i) {
      ASSERT_EQ(prod.stream[i], ref.stream[i])
          << "round " << round << " event " << i << ": production ("
          << prod.stream[i].time << ", " << prod.stream[i].seq << ", "
          << prod.stream[i].site << ") vs reference (" << ref.stream[i].time
          << ", " << ref.stream[i].seq << ", " << ref.stream[i].site << ")";
    }
    EXPECT_EQ(prod.cancel_results, ref.cancel_results) << "round " << round;
    EXPECT_EQ(prod.final_now, ref.final_now) << "round " << round;
    EXPECT_EQ(prod.processed, ref.processed) << "round " << round;
    EXPECT_EQ(prod.pending, ref.pending) << "round " << round;
  }
}

TEST(EngineDifferential, FingerprintsMatchReference) {
  for (std::size_t round = 0; round < 8; ++round) {
    const Script sc = make_script(0xf1b90000 + round, 512);
    const std::uint64_t fp_prod = Runner<Engine>(sc).run_fingerprint();
    const std::uint64_t fp_ref =
        Runner<test::ReferenceEngine>(sc).run_fingerprint();
    EXPECT_TRUE(check::DeterminismAuditor::expect_identical(
        fp_prod, fp_ref, "engine differential fuzz"))
        << "round " << round;
    // And the fingerprint is stable run-to-run on the production engine.
    EXPECT_EQ(fp_prod, Runner<Engine>(sc).run_fingerprint())
        << "round " << round;
  }
}

// Cancel-heavy script that forces the production engine through its
// tombstone-compaction path (>1024 dead events with few live survivors)
// while the reference simply erases — the streams must still agree.
template <typename EngineT>
std::vector<Record> mass_cancel_stream() {
  EngineT e;
  std::vector<Record> stream;
  e.set_dispatch_observer(
      [&stream](Time t, std::uint64_t seq, const char* site) {
        stream.push_back(Record{t, seq, site != nullptr ? site : "(null)"});
      });
  std::vector<typename EngineT::EventId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(e.schedule_at((i * 13) % 97, [] {}, "diff.mass"));
  }
  // Cancel all but every 64th event, front to back.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 64 != 0) {
      EXPECT_TRUE(e.cancel(ids[i]));
    }
  }
  e.run();
  return stream;
}

TEST(EngineDifferential, MassCancellationMatchesReference) {
  EXPECT_EQ(mass_cancel_stream<Engine>(),
            mass_cancel_stream<test::ReferenceEngine>());
}

}  // namespace
}  // namespace partib::sim
