// Discrete-event engine: ordering, determinism, cancellation, clock
// semantics.  The engine is the clock for every benchmark figure, so these
// invariants are load-bearing for the whole reproduction.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace partib::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  Time seen = -1;
  e.schedule_at(123, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 123);
  EXPECT_EQ(e.now(), 123);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  Time seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, CallbackMaySchedule) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(10, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, CancelPreventsDispatch) {
  Engine e;
  bool ran = false;
  const auto id = e.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelTwiceFails) {
  Engine e;
  const auto id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterDispatchFails) {
  Engine e;
  const auto id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelInvalidIdFails) {
  Engine e;
  EXPECT_FALSE(e.cancel(Engine::EventId{}));
}

TEST(Engine, CancelFromCallback) {
  Engine e;
  bool second_ran = false;
  Engine::EventId second = e.schedule_at(20, [&] { second_ran = true; });
  e.schedule_at(10, [&] { EXPECT_TRUE(e.cancel(second)); });
  e.run();
  EXPECT_FALSE(second_ran);
}

TEST(Engine, StepDispatchesExactlyOne) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] { ++count; });
  e.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<Time> fired;
  for (Time t : {10, 20, 30, 40}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  EXPECT_EQ(e.run_until(25), 2u);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(e.now(), 25);  // clock advances even while idle
  EXPECT_EQ(e.pending(), 2u);
}

TEST(Engine, RunUntilInclusiveOfDeadline) {
  Engine e;
  bool ran = false;
  e.schedule_at(25, [&] { ran = true; });
  e.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Engine, ProcessedCountAccumulates) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.processed_count(), 5u);
}

TEST(Engine, DeterministicAcrossRuns) {
  // Two engines given identical schedules must produce identical
  // dispatch sequences — the foundation of reproducible benchmarks.
  auto trace = [] {
    Engine e;
    std::vector<std::pair<Time, int>> out;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at((i * 37) % 101, [&out, i, &e] {
        out.emplace_back(e.now(), i);
      });
    }
    e.run();
    return out;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(Engine, ZeroDelayEventRunsAtCurrentTime) {
  Engine e;
  Time seen = -1;
  e.schedule_at(42, [&] {
    e.schedule_after(0, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace partib::sim
