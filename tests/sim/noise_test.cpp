// Arrival-pattern generators and the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/time.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"

namespace partib::sim {
namespace {

TEST(Noise, AllEqual) {
  const auto p = all_equal(8, msec(1));
  ASSERT_EQ(p.size(), 8u);
  for (Duration d : p) EXPECT_EQ(d, msec(1));
}

TEST(Noise, ManyBeforeOneDelaysOnlyLaggard) {
  // The paper's canonical case: 100 ms compute, 4% noise => 4 ms delay.
  const auto p = many_before_one(32, msec(100), 0.04, /*laggard=*/5);
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i == 5) {
      EXPECT_EQ(p[i], msec(104));
    } else {
      EXPECT_EQ(p[i], msec(100));
    }
  }
}

TEST(Noise, ManyBeforeOneZeroNoiseIsUniform) {
  const auto p = many_before_one(4, msec(1), 0.0);
  for (Duration d : p) EXPECT_EQ(d, msec(1));
}

TEST(Noise, ManyBeforeOneDefaultLaggardIsZero) {
  const auto p = many_before_one(4, msec(1), 0.5);
  EXPECT_GT(p[0], p[1]);
}

TEST(Noise, UniformNoiseBounded) {
  Rng rng(7);
  const auto p = uniform_noise(1000, msec(10), 0.04, rng);
  for (Duration d : p) {
    EXPECT_GE(d, msec(10));
    EXPECT_LE(d, msec(10) + msec(10) * 4 / 100 + 1);
  }
}

TEST(Noise, UniformNoiseNotDegenerate) {
  Rng rng(7);
  const auto p = uniform_noise(100, msec(10), 0.04, rng);
  EXPECT_NE(*std::min_element(p.begin(), p.end()),
            *std::max_element(p.begin(), p.end()));
}

TEST(Noise, StaggeredIsArithmetic) {
  const auto p = staggered(5, usec(10), usec(2));
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p[i], usec(10) + static_cast<Duration>(i) * usec(2));
  }
}

TEST(Noise, GaussianNoiseNonNegativeJitter) {
  Rng rng(11);
  const auto p = gaussian_noise(1000, msec(1), 0.1, rng);
  for (Duration d : p) EXPECT_GE(d, msec(1));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

}  // namespace
}  // namespace partib::sim
