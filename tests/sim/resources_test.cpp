// Virtual-time resource models: FIFO k-server queue (doorbell / WQE
// engine) and processor-sharing CPU (oversubscribed compute).
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace partib::sim {
namespace {

TEST(FifoResource, SingleServerSerializes) {
  Engine e;
  FifoResource res(e, 1);
  std::vector<std::pair<Time, Time>> intervals;
  for (int i = 0; i < 3; ++i) {
    res.request(100, [&](Time s, Time t) { intervals.emplace_back(s, t); });
  }
  e.run();
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], (std::pair<Time, Time>{0, 100}));
  EXPECT_EQ(intervals[1], (std::pair<Time, Time>{100, 200}));
  EXPECT_EQ(intervals[2], (std::pair<Time, Time>{200, 300}));
}

TEST(FifoResource, MultipleServersOverlap) {
  Engine e;
  FifoResource res(e, 2);
  std::vector<Time> ends;
  for (int i = 0; i < 4; ++i) {
    res.request(100, [&](Time, Time t) { ends.push_back(t); });
  }
  e.run();
  ASSERT_EQ(ends.size(), 4u);
  // Two waves of two.
  EXPECT_EQ(ends[0], 100);
  EXPECT_EQ(ends[1], 100);
  EXPECT_EQ(ends[2], 200);
  EXPECT_EQ(ends[3], 200);
}

TEST(FifoResource, LateRequestStartsImmediately) {
  Engine e;
  FifoResource res(e, 1);
  res.request(10, [](Time s, Time) { EXPECT_EQ(s, 0); });
  e.run();
  e.schedule_at(500, [&] {
    res.request(10, [](Time s, Time) { EXPECT_EQ(s, 500); });
  });
  e.run();
}

TEST(FifoResource, ZeroServiceCompletesInstantlyInOrder) {
  Engine e;
  FifoResource res(e, 1);
  std::vector<int> order;
  res.request(0, [&](Time, Time) { order.push_back(0); });
  res.request(0, [&](Time, Time) { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(FifoResource, BusyTimeAccumulates) {
  Engine e;
  FifoResource res(e, 2);
  for (int i = 0; i < 5; ++i) res.request(100, [](Time, Time) {});
  e.run();
  EXPECT_EQ(res.busy_time(), 500);
}

TEST(FifoResource, RequestFromCompletionChains) {
  Engine e;
  FifoResource res(e, 1);
  Time second_end = 0;
  res.request(50, [&](Time, Time) {
    res.request(50, [&](Time, Time t) { second_end = t; });
  });
  e.run();
  EXPECT_EQ(second_end, 100);
}

TEST(ProcessorSharing, UndersubscribedRunsAtFullRate) {
  Engine e;
  ProcessorSharingCpu cpu(e, 4);
  std::vector<Time> ends(3, -1);
  for (int i = 0; i < 3; ++i) {
    cpu.submit(1000, [&ends, i, &e] { ends[static_cast<std::size_t>(i)] = e.now(); });
  }
  e.run();
  for (Time t : ends) EXPECT_EQ(t, 1000);
}

TEST(ProcessorSharing, OversubscriptionStretchesUniformly) {
  // 8 equal jobs on 4 cores run at rate 1/2: all finish at 2x the work.
  Engine e;
  ProcessorSharingCpu cpu(e, 4);
  std::vector<Time> ends;
  for (int i = 0; i < 8; ++i) {
    cpu.submit(1000, [&ends, &e] { ends.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(ends.size(), 8u);
  for (Time t : ends) EXPECT_NEAR(static_cast<double>(t), 2000.0, 2.0);
}

TEST(ProcessorSharing, RateRecoversAfterDepartures) {
  // One long and one short job on 1 core: the short job's departure
  // doubles the long job's rate.  short: 1000 work, long: 3000 work.
  // Shared until t where both have run 1000 => t = 2000; long then has
  // 2000 left at rate 1 => finishes at 4000.
  Engine e;
  ProcessorSharingCpu cpu(e, 1);
  Time short_end = -1, long_end = -1;
  cpu.submit(3000, [&] { long_end = e.now(); });
  cpu.submit(1000, [&] { short_end = e.now(); });
  e.run();
  EXPECT_NEAR(static_cast<double>(short_end), 2000.0, 3.0);
  EXPECT_NEAR(static_cast<double>(long_end), 4000.0, 3.0);
}

TEST(ProcessorSharing, LateArrivalSlowsExisting) {
  // Job A (2000 work) alone on 1 core from t=0; job B (1000) arrives at
  // t=1000.  A has 1000 left, shared rate 1/2: both finish at 3000.
  Engine e;
  ProcessorSharingCpu cpu(e, 1);
  Time a_end = -1, b_end = -1;
  cpu.submit(2000, [&] { a_end = e.now(); });
  e.schedule_at(1000, [&] { cpu.submit(1000, [&] { b_end = e.now(); }); });
  e.run();
  EXPECT_NEAR(static_cast<double>(a_end), 3000.0, 3.0);
  EXPECT_NEAR(static_cast<double>(b_end), 3000.0, 3.0);
}

TEST(ProcessorSharing, ZeroWorkCompletes) {
  Engine e;
  ProcessorSharingCpu cpu(e, 1);
  bool done = false;
  cpu.submit(0, [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
}

TEST(ProcessorSharing, CompletionCallbackMaySubmit) {
  Engine e;
  ProcessorSharingCpu cpu(e, 1);
  Time end = -1;
  cpu.submit(100, [&] {
    cpu.submit(100, [&] { end = e.now(); });
  });
  e.run();
  EXPECT_NEAR(static_cast<double>(end), 200.0, 3.0);
}

TEST(ProcessorSharing, ActiveJobsTracksPopulation) {
  Engine e;
  ProcessorSharingCpu cpu(e, 2);
  cpu.submit(1000, [] {});
  cpu.submit(1000, [] {});
  EXPECT_EQ(cpu.active_jobs(), 2u);
  e.run();
  EXPECT_EQ(cpu.active_jobs(), 0u);
}

TEST(ProcessorSharing, ManyJobsNearEqualFinish) {
  // 128 equal jobs on 40 cores: all should finish near work * 128/40.
  Engine e;
  ProcessorSharingCpu cpu(e, 40);
  std::vector<Time> ends;
  for (int i = 0; i < 128; ++i) {
    cpu.submit(10'000, [&ends, &e] { ends.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(ends.size(), 128u);
  const double expected = 10'000.0 * 128 / 40;
  for (Time t : ends) EXPECT_NEAR(static_cast<double>(t), expected, 10.0);
}

}  // namespace
}  // namespace partib::sim
