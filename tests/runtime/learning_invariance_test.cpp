// Producer-thread-count invariance of learned plans (docs/ADAPTIVE.md,
// docs/THREADING.md).
//
// The arrival profile quantizes offsets onto the learning grid before
// the EWMA, so the plan the sender learns must be a function of the
// arrival *pattern*, not of which producer thread delivered each Pready
// or how the claims interleaved.  This harness replays the same
// virtual-time arrival schedule through 1, 4 and 16 racing producers:
// each wave of partitions is released only after the bridge has advanced
// virtual time to the wave's offset (Engine::run_until), producers race
// to claim the wave, and the bridge applies the claims while the clock
// still reads the wave's exact offset.  The learned plan — group
// layout, timer delta, transport-partition count, adopted-replan count,
// folded epochs — must come out identical across producer counts, and
// every round must stay byte-exact.  Runs under the TSan CI job via the
// `threaded` label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "runtime/bridge.hpp"
#include "runtime/producer.hpp"
#include "runtime/sharded_engine.hpp"
#include "support/test_world.hpp"

namespace partib::runtime {
namespace {

constexpr std::size_t kPartitions = 64;
constexpr std::size_t kPartitionBytes = 64 * KiB;
constexpr int kRounds = 6;

struct Wave {
  Duration offset;        // virtual-time release offset within the round
  std::size_t first;      // contiguous partition block [first, first+count)
  std::size_t count;
};

// Bursty-tail schedule on a msec(1) learning grid: seven head waves
// inside the first quantum, one straggler block 6 ms out.
std::vector<Wave> bursty_waves() {
  std::vector<Wave> waves;
  for (std::size_t w = 0; w < 7; ++w) {
    waves.push_back({static_cast<Duration>(w) * usec(30), w * 8, 8});
  }
  waves.push_back({msec(6), 56, 8});
  return waves;
}

struct PlanSnapshot {
  std::vector<std::size_t> firsts;
  std::vector<std::size_t> counts;
  Duration delta = 0;
  std::size_t tp = 0;
  std::uint64_t replans = 0;
  std::size_t epochs = 0;
  bool operator==(const PlanSnapshot&) const = default;
};

PlanSnapshot run_with_producers(int producers) {
  model::ArrivalLearnConfig cfg;
  cfg.quantum = msec(1);
  part::Options opts = test::learning_options(msec(4), cfg);

  sim::Engine engine;
  mpi::World world(engine, mpi::WorldOptions{});
  std::vector<std::byte> sbuf(kPartitions * kPartitionBytes);
  std::vector<std::byte> rbuf(kPartitions * kPartitionBytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, kPartitions,
                                    /*dst=*/1, /*tag=*/0, /*comm=*/0, opts,
                                    &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, kPartitions,
                                    /*src=*/0, /*tag=*/0, /*comm=*/0, opts,
                                    &recv)));
  engine.run();  // settle handshakes

  ShardedProgressEngine::Config rt_cfg;
  rt_cfg.shards = 2;
  ShardedProgressEngine rt(rt_cfg);
  rt.add_channel(send.get(), recv.get());

  const std::vector<Wave> waves = bursty_waves();
  for (int round = 1; round <= kRounds; ++round) {
    test::fill_pattern(sbuf, round);
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));
    rt.begin_round();

    std::atomic<int> release{-1};
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < producers; ++t) {
      threads.emplace_back([&, t] {
        ProducerHandle h(rt, static_cast<std::uint32_t>(t));
        for (std::size_t w = 0; w < waves.size(); ++w) {
          while (release.load(std::memory_order_acquire) <
                 static_cast<int>(w)) {
            std::this_thread::yield();
          }
          // This thread's slice of the wave, strided so every producer
          // count exercises real cross-thread interleaving.
          for (std::size_t i = static_cast<std::size_t>(t);
               i < waves[w].count;
               i += static_cast<std::size_t>(producers)) {
            h.pready(0, waves[w].first + i);
          }
          h.flush();  // publish before signalling the wave done
          done.fetch_add(1, std::memory_order_release);
        }
      });
    }

    const Time t0 = engine.now();
    for (std::size_t w = 0; w < waves.size(); ++w) {
      // Advance virtual time to the wave's offset (firing any due group
      // timers and wire events), release the wave, wait for every
      // producer to publish, then apply the claims while now() still
      // reads the wave's exact offset — the profile records the same
      // virtual arrival time no matter how many threads raced.
      engine.run_until(t0 + waves[w].offset);
      release.store(static_cast<int>(w), std::memory_order_release);
      const int target = static_cast<int>(w + 1) * producers;
      while (done.load(std::memory_order_acquire) < target) {
        std::this_thread::yield();
      }
      rt.drain();
    }
    for (auto& th : threads) th.join();
    pump_until(engine, rt,
               [&] { return send->test() && recv->test(); });
    EXPECT_TRUE(test::buffers_equal(sbuf, rbuf))
        << "producers=" << producers << " round=" << round;
  }

  PlanSnapshot snap;
  snap.firsts.assign(send->group_firsts().begin(),
                     send->group_firsts().end());
  snap.counts.assign(send->group_counts().begin(),
                     send->group_counts().end());
  snap.delta = send->plan().timer_delta;
  snap.tp = send->transport_partitions();
  snap.replans = send->replans_adopted();
  snap.epochs = send->profile_epochs();
  return snap;
}

TEST(LearningInvariance, LearnedPlanIsIdenticalAcross1And4And16Producers) {
  const PlanSnapshot one = run_with_producers(1);
  const PlanSnapshot four = run_with_producers(4);
  const PlanSnapshot sixteen = run_with_producers(16);

  // The schedule actually taught the sender something: warm profile and
  // at least one adopted replan isolating the straggler block.
  EXPECT_GE(one.epochs, static_cast<std::size_t>(kRounds - 1));
  EXPECT_GE(one.replans, 1u);
  EXPECT_GT(one.firsts.size(), 1u);

  EXPECT_EQ(four, one) << "4 producers learned a different plan";
  EXPECT_EQ(sixteen, one) << "16 producers learned a different plan";
}

}  // namespace
}  // namespace partib::runtime
