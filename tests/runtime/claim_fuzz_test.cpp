// Fuzz: concurrent pready_range over overlapping/adjacent ranges must
// partition the claim space exactly like the single-threaded reference.
//
// Layer 1 fuzzes atomic_claim_range (the bitmap primitive the engine's
// pready_range is built on) directly against a plain-bitmap reference:
// the runs the racing threads win must be pairwise disjoint and their
// union must equal what one thread marking the same ranges with
// part/bitrun.hpp-style plain stores would produce.
//
// Layer 2 drives a real channel end to end: racing ProducerHandles issue
// the same overlapping ranges, and the receive buffer must come out
// byte-identical to the DES oracle regardless of which thread won what.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "common/atomic_bits.hpp"
#include "common/bits.hpp"
#include "part/bitrun.hpp"
#include "runtime/bridge.hpp"
#include "runtime/producer.hpp"
#include "runtime/sharded_engine.hpp"
#include "support/test_world.hpp"

namespace partib::runtime {
namespace {

struct Range {
  std::size_t first;
  std::size_t count;
};

/// Overlapping/adjacent ranges biased toward word boundaries (the
/// cross-word stitching in atomic_claim_range is the part worth fuzzing).
std::vector<Range> random_ranges(std::mt19937& rng, std::size_t bits,
                                 std::size_t n) {
  std::vector<Range> out;
  std::uniform_int_distribution<std::size_t> pos(0, bits - 1);
  std::uniform_int_distribution<std::size_t> len(1, bits / 2);
  std::uniform_int_distribution<int> mode(0, 3);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t first = pos(rng);
    if (mode(rng) == 0) first = (first / 64) * 64;        // word-aligned
    if (mode(rng) == 1 && first > 0) first = first - 1;   // straddle
    const std::size_t count = std::min(len(rng), bits - first);
    out.push_back({first, count});
  }
  return out;
}

TEST(ClaimFuzz, AtomicClaimRangeMatchesSingleThreadedReference) {
  constexpr std::size_t kBits = 640;  // 10 words
  constexpr int kThreads = 4;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::mt19937 seed_rng(0xC1A1Fu + static_cast<unsigned>(trial));
    std::vector<std::vector<Range>> per_thread;
    for (int t = 0; t < kThreads; ++t) {
      per_thread.push_back(random_ranges(seed_rng, kBits, 6));
    }

    // Single-threaded reference: plain bitmap union of all the ranges.
    std::vector<std::uint64_t> reference(bitmap_words(kBits), 0);
    for (const auto& ranges : per_thread) {
      for (const Range& r : ranges) {
        part::bitmap_set_range(reference.data(), r.first, r.count);
      }
    }

    // Racing claims: every thread replays its ranges concurrently,
    // collecting the runs it won.
    std::vector<std::uint64_t> shared(bitmap_words(kBits), 0);
    std::vector<std::vector<Range>> won(kThreads);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {}
        for (const Range& r : per_thread[static_cast<std::size_t>(t)]) {
          atomic_claim_range(
              shared.data(), r.first, r.count,
              [&](std::size_t run_first, std::size_t run_len) {
                won[static_cast<std::size_t>(t)].push_back(
                    {run_first, run_len});
              });
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    // Rebuild a bitmap from the won runs: any double-claim shows up as a
    // bit set twice, any dropped claim as a missing bit.
    std::vector<std::uint64_t> rebuilt(bitmap_words(kBits), 0);
    std::size_t total_won = 0;
    for (const auto& runs : won) {
      for (const Range& r : runs) {
        for (std::size_t b = r.first; b < r.first + r.count; ++b) {
          ASSERT_FALSE(bitmap_test(rebuilt.data(), b))
              << "partition " << b << " claimed twice (trial " << trial
              << ")";
          bitmap_set(rebuilt.data(), b);
        }
        total_won += r.count;
      }
    }
    EXPECT_EQ(rebuilt, reference) << "trial " << trial;
    EXPECT_EQ(rebuilt, shared) << "trial " << trial;
    std::size_t expect_bits = 0;
    for (std::uint64_t w : reference) {
      expect_bits += static_cast<std::size_t>(std::popcount(w));
    }
    EXPECT_EQ(total_won, expect_bits) << "trial " << trial;
  }
}

TEST(ClaimFuzz, ConcurrentOverlappingRangesDeliverEveryByteOnce) {
  constexpr std::size_t kPartitions = 256;
  constexpr int kThreads = 4;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    test::ChannelFixture fx(kPartitions * 32, kPartitions,
                            test::static_options(32, 2));
    fx.engine.run();  // settle the handshake
    ShardedProgressEngine::Config cfg;
    cfg.shards = 2;
    ShardedProgressEngine rt(cfg);
    const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

    test::fill_pattern(fx.sbuf, trial);
    ASSERT_TRUE(ok(fx.send->start()));
    ASSERT_TRUE(ok(fx.recv->start()));
    rt.begin_round();

    std::mt19937 seed_rng(0xFADEDu + static_cast<unsigned>(trial));
    std::vector<std::vector<Range>> per_thread;
    for (int t = 0; t < kThreads; ++t) {
      per_thread.push_back(random_ranges(seed_rng, kPartitions, 8));
    }

    std::atomic<std::size_t> wins{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&, t] {
        ProducerHandle h(rt, static_cast<std::uint32_t>(t));
        std::size_t mine = 0;
        for (const Range& r : per_thread[static_cast<std::size_t>(t)]) {
          mine += h.pready_range(ch, r.first, r.first + r.count - 1);
        }
        // The random ranges rarely cover everything; one thread (id 0)
        // sweeps the full buffer so the round can complete.  Overlap with
        // everyone else is the point.
        if (t == 0) mine += h.pready_range(ch, 0, kPartitions - 1);
        wins.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    pump_until(fx.engine, rt,
               [&] { return fx.send->test() && fx.recv->test(); });
    for (auto& p : producers) p.join();

    EXPECT_EQ(wins.load(), kPartitions)
        << "trial " << trial << ": claims must sum to exactly one win "
        << "per partition";
    EXPECT_EQ(fx.rbuf, fx.sbuf) << "trial " << trial;
    EXPECT_TRUE(rt.quiescent());
  }
}

}  // namespace
}  // namespace partib::runtime
