// Differential harness: threaded producers vs the DES oracle.
//
// DES mode is the determinism oracle — the single-threaded engine whose
// figure fingerprints are pinned byte-for-byte.  This harness runs the
// same channel geometry twice per trial:
//
//   oracle:   plain DES, every partition marked ready in ascending order
//             on the one thread, engine.run() to quiescence;
//   threaded: N real producer threads racing pready/pready_range through
//             the sharded engine while the main thread pumps the bridge.
//
// The claim-arrival interleaving differs wildly between the two (and
// between repeat threaded runs), so message counts and virtual-time
// traces may differ; what must NOT differ is the result: per-channel
// received bytes (checksummed) and per-partition completion sets.  Trials
// cycle 1, 4 and 16 producers over seeded random geometry, with the PR 6
// lock-order and cross-thread ownership auditors plus this PR's
// shard-affinity auditor armed the whole time — any report fails the
// trial.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "check/concurrency_check.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "runtime/bridge.hpp"
#include "runtime/producer.hpp"
#include "runtime/sharded_engine.hpp"
#include "support/test_world.hpp"

namespace partib::runtime {
namespace {

std::uint64_t fnv1a(const std::vector<std::byte>& buf) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : buf) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct Geometry {
  std::size_t channels;
  std::size_t partitions;
  std::size_t psize;
  std::size_t tp;
  int qps;
  std::size_t shards;
  int rounds;
};

Geometry random_geometry(std::mt19937& rng) {
  Geometry g;
  g.channels = 1 + rng() % 3;
  g.partitions = std::size_t{16} << (rng() % 4);  // 16..128
  g.psize = std::size_t{32} << (rng() % 3);       // 32..128 bytes
  g.tp = std::min<std::size_t>(g.partitions, std::size_t{4} << (rng() % 3));
  g.qps = 1 + static_cast<int>(rng() % 2);
  g.shards = std::size_t{1} << (rng() % 3);  // 1..4
  g.rounds = 2;
  return g;
}

/// N identical channels rank0 -> rank1 on one world, distinct tags.
struct MultiChannel {
  sim::Engine engine;
  std::unique_ptr<mpi::World> world;
  std::vector<std::vector<std::byte>> sbufs;
  std::vector<std::vector<std::byte>> rbufs;
  std::vector<std::unique_ptr<part::PsendRequest>> sends;
  std::vector<std::unique_ptr<part::PrecvRequest>> recvs;

  explicit MultiChannel(const Geometry& g) {
    world = std::make_unique<mpi::World>(engine, mpi::WorldOptions{});
    const part::Options opts =
        test::static_options(g.tp, g.qps);
    const std::size_t bytes = g.partitions * g.psize;
    sbufs.resize(g.channels);
    rbufs.resize(g.channels);
    sends.resize(g.channels);
    recvs.resize(g.channels);
    for (std::size_t c = 0; c < g.channels; ++c) {
      sbufs[c].resize(bytes);
      rbufs[c].resize(bytes);
      PARTIB_ASSERT(ok(part::psend_init(world->rank(0), sbufs[c],
                                        g.partitions, /*dst=*/1,
                                        /*tag=*/static_cast<int>(c),
                                        /*comm=*/0, opts, &sends[c])));
      PARTIB_ASSERT(ok(part::precv_init(world->rank(1), rbufs[c],
                                        g.partitions, /*src=*/0,
                                        /*tag=*/static_cast<int>(c),
                                        /*comm=*/0, opts, &recvs[c])));
    }
    engine.run();  // settle handshakes
  }

  void start_round(int round) {
    for (std::size_t c = 0; c < sbufs.size(); ++c) {
      test::fill_pattern(sbufs[c], round * 17 + static_cast<int>(c));
      PARTIB_ASSERT(ok(sends[c]->start()));
      PARTIB_ASSERT(ok(recvs[c]->start()));
    }
  }

  bool round_done() const {
    for (std::size_t c = 0; c < sends.size(); ++c) {
      if (!sends[c]->test() || !recvs[c]->test()) return false;
    }
    return true;
  }
};

struct Fingerprint {
  std::vector<std::uint64_t> checksums;            // per channel, per round
  std::vector<std::vector<bool>> arrived;          // per channel (last round)
  bool operator==(const Fingerprint&) const = default;
};

/// The oracle: single-threaded DES, ascending pready order.
Fingerprint run_des_oracle(const Geometry& g) {
  MultiChannel mc(g);
  Fingerprint fp;
  for (int round = 1; round <= g.rounds; ++round) {
    mc.start_round(round);
    for (std::size_t c = 0; c < g.channels; ++c) {
      for (std::size_t p = 0; p < g.partitions; ++p) {
        PARTIB_ASSERT(ok(mc.sends[c]->pready(p)));
      }
    }
    mc.engine.run();
    PARTIB_ASSERT(mc.round_done());
    for (std::size_t c = 0; c < g.channels; ++c) {
      fp.checksums.push_back(fnv1a(mc.rbufs[c]));
    }
  }
  fp.arrived.resize(g.channels);
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t p = 0; p < g.partitions; ++p) {
      fp.arrived[c].push_back(mc.recvs[c]->parrived(p));
    }
  }
  return fp;
}

/// The same geometry with `producers` racing threads per round.
Fingerprint run_threaded(const Geometry& g, int producers, unsigned seed) {
  MultiChannel mc(g);
  ShardedProgressEngine::Config cfg;
  cfg.shards = g.shards;
  ShardedProgressEngine rt(cfg);
  for (std::size_t c = 0; c < g.channels; ++c) {
    rt.add_channel(mc.sends[c].get(), mc.recvs[c].get());
  }

  Fingerprint fp;
  for (int round = 1; round <= g.rounds; ++round) {
    mc.start_round(round);
    rt.begin_round();

    std::vector<std::thread> threads;
    for (int t = 0; t < producers; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 rng(seed + static_cast<unsigned>(t * 101 + round));
        ProducerHandle h(rt, static_cast<std::uint32_t>(t));
        for (std::size_t c = 0; c < g.channels; ++c) {
          // This thread's slice: partitions congruent to t mod producers,
          // claimed in shuffled order; then a full-range sweep so every
          // thread also races for everyone else's partitions.
          std::vector<std::size_t> mine;
          for (std::size_t p = static_cast<std::size_t>(t);
               p < g.partitions;
               p += static_cast<std::size_t>(producers)) {
            mine.push_back(p);
          }
          std::shuffle(mine.begin(), mine.end(), rng);
          for (std::size_t p : mine) h.pready(c, p);
          if (rng() % 2 == 0) {
            h.pready_range(c, 0, g.partitions - 1);
          }
        }
        h.flush();  // publish before this thread signals done by exiting
      });
    }
    pump_until(mc.engine, rt, [&] { return mc.round_done(); });
    for (auto& th : threads) th.join();
    PARTIB_ASSERT(rt.quiescent());

    for (std::size_t c = 0; c < g.channels; ++c) {
      fp.checksums.push_back(fnv1a(mc.rbufs[c]));
    }
  }
  fp.arrived.resize(g.channels);
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t p = 0; p < g.partitions; ++p) {
      // Both the engine mirror and the request itself must agree.
      const bool mirror = rt.parrived(c, p);
      const bool direct = mc.recvs[c]->parrived(p);
      PARTIB_ASSERT(mirror == direct);
      fp.arrived[c].push_back(direct);
    }
  }
  return fp;
}

TEST(ThreadedDifferential, MatchesDesOracleAcrossSeededTrials) {
  constexpr int kTrials = 102;  // >= 100; cycles 1, 4, 16 producers
  constexpr int kProducerCycle[] = {1, 4, 16};
  check::reset();
  check::ScopedLockAudit lock_audit;
  check::ScopedOwnerAudit owner_audit;
  check::ScopedShardAudit shard_audit;

  for (int trial = 0; trial < kTrials; ++trial) {
    const unsigned seed = 0x5EED0000u + static_cast<unsigned>(trial);
    std::mt19937 rng(seed);
    const Geometry g = random_geometry(rng);
    const int producers = kProducerCycle[trial % 3];

    const Fingerprint oracle = run_des_oracle(g);
    const Fingerprint threaded = run_threaded(g, producers, seed);

    ASSERT_EQ(threaded.checksums, oracle.checksums)
        << "trial " << trial << ": per-channel received bytes diverged "
        << "(producers=" << producers << ", channels=" << g.channels
        << ", partitions=" << g.partitions << ", shards=" << g.shards
        << ")";
    ASSERT_EQ(threaded.arrived, oracle.arrived)
        << "trial " << trial << ": completion sets diverged";

    ASSERT_EQ(check::lock_order_reports(), 0u) << "trial " << trial;
    ASSERT_EQ(check::cross_thread_reports(), 0u) << "trial " << trial;
    ASSERT_EQ(check::shard_affinity_reports(), 0u) << "trial " << trial;
  }
  check::reset();
}

}  // namespace
}  // namespace partib::runtime
