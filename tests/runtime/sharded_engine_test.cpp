// ShardedProgressEngine unit tests: exactly-once claims under real
// producer threads, serialized-baseline equivalence, the parrived mirror,
// quiescence accounting, and the shard-affinity auditor.
#include "runtime/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "check/concurrency_check.hpp"
#include "check/check.hpp"
#include "runtime/bridge.hpp"
#include "runtime/producer.hpp"
#include "support/test_world.hpp"

namespace partib::runtime {
namespace {

using test::ChannelFixture;
using test::fill_pattern;

ShardedProgressEngine::Config config(std::size_t shards,
                                     ShardedProgressEngine::Mode mode) {
  ShardedProgressEngine::Config cfg;
  cfg.shards = shards;
  cfg.mode = mode;
  return cfg;
}

/// Complete the channel handshake so tag_shard() has QPs to tag.
void settle(ChannelFixture& fx) { fx.engine.run(); }

TEST(ShardedEngine, ClaimIsExactlyOncePerPartition) {
  ChannelFixture fx(64 * 64, 64, test::static_options(8, 2));
  settle(fx);
  ShardedProgressEngine rt(
      config(4, ShardedProgressEngine::Mode::kSharded));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  fill_pattern(fx.sbuf, 1);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  rt.begin_round();

  constexpr int kThreads = 8;
  std::atomic<std::size_t> wins{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      std::size_t mine = 0;
      // Every thread races for every partition; the claim bitmap must
      // hand each one out exactly once.
      for (std::size_t p = 0; p < 64; ++p) {
        if (rt.pready(ch, p, static_cast<std::uint32_t>(t))) ++mine;
      }
      wins.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  pump_until(fx.engine, rt,
             [&] { return fx.send->test() && fx.recv->test(); });
  for (auto& p : producers) p.join();

  EXPECT_EQ(wins.load(), 64u) << "every partition claimed exactly once";
  EXPECT_TRUE(rt.quiescent());
  EXPECT_EQ(rt.ops_pushed(), rt.ops_applied());
  EXPECT_EQ(fx.rbuf, fx.sbuf);
}

TEST(ShardedEngine, SerializedBaselineCompletesRound) {
  ChannelFixture fx(32 * 128, 32, test::ploggp_options());
  settle(fx);
  ShardedProgressEngine rt(
      config(1, ShardedProgressEngine::Mode::kSerialized));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  fill_pattern(fx.sbuf, 2);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  rt.begin_round();

  for (std::size_t p = 0; p < 32; ++p) EXPECT_TRUE(rt.pready(ch, p));
  // Second claim of a marked partition is a no-op returning false.
  EXPECT_FALSE(rt.pready(ch, 0));
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_EQ(fx.rbuf, fx.sbuf);
  EXPECT_TRUE(rt.quiescent()) << "serialized mode has no in-flight ops";
  for (std::size_t p = 0; p < 32; ++p) EXPECT_TRUE(rt.parrived(ch, p));
}

TEST(ShardedEngine, RangeClaimHandsOffMaximalRuns) {
  ChannelFixture fx(128 * 16, 128, test::static_options(16, 2));
  settle(fx);
  ShardedProgressEngine rt(
      config(2, ShardedProgressEngine::Mode::kSharded));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  rt.begin_round();

  // Punch a hole, then claim across it: the engine must emit the two
  // surviving maximal runs as two ops, not 127 singletons.
  EXPECT_TRUE(rt.pready(ch, 60));
  EXPECT_EQ(rt.pready_range(ch, 0, 127), 127u);
  EXPECT_EQ(rt.ops_pushed(), 3u) << "one singleton + two maximal runs";
  // Everything is claimed; a re-claim wins nothing and pushes nothing.
  EXPECT_EQ(rt.pready_range(ch, 0, 127), 0u);
  EXPECT_EQ(rt.ops_pushed(), 3u);

  pump_until(fx.engine, rt,
             [&] { return fx.send->test() && fx.recv->test(); });
  for (std::size_t p = 0; p < 128; ++p) EXPECT_TRUE(rt.parrived(ch, p));
}

TEST(ShardedEngine, BeginRoundResetsClaimsAndMirror) {
  ChannelFixture fx(16 * 64, 16, test::static_options(4, 1));
  settle(fx);
  ShardedProgressEngine rt(
      config(2, ShardedProgressEngine::Mode::kSharded));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  for (int round = 1; round <= 3; ++round) {
    fill_pattern(fx.sbuf, round);
    ASSERT_TRUE(ok(fx.send->start()));
    ASSERT_TRUE(ok(fx.recv->start()));
    rt.begin_round();
    EXPECT_FALSE(rt.parrived(ch, 0)) << "mirror must reset each round";
    EXPECT_EQ(rt.pready_range(ch, 0, 15), 16u)
        << "claims must reset each round";
    pump_until(fx.engine, rt,
               [&] { return fx.send->test() && fx.recv->test(); });
    EXPECT_EQ(fx.rbuf, fx.sbuf) << "round " << round;
    EXPECT_TRUE(rt.parrived(ch, 15));
  }
}

TEST(ShardedEngine, ChannelsAssignRoundRobinAcrossShards) {
  ChannelFixture fx(8 * 64, 8, test::static_options(2, 1));
  settle(fx);
  ShardedProgressEngine rt(
      config(3, ShardedProgressEngine::Mode::kSharded));
  for (std::size_t i = 0; i < 5; ++i) {
    // Registration geometry only; reuse the same request pointers.
    EXPECT_EQ(rt.add_channel(fx.send.get(), fx.recv.get()), i);
    EXPECT_EQ(rt.shard_of(i), i % 3);
  }
  EXPECT_EQ(rt.shard_count(), 3u);
  EXPECT_EQ(rt.channel_count(), 5u);
}

TEST(ShardedEngine, ProducerHandleCoalescesContiguousClaims) {
  ChannelFixture fx(64 * 32, 64, test::static_options(8, 2));
  settle(fx);
  ShardedProgressEngine rt(
      config(2, ShardedProgressEngine::Mode::kSharded));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  rt.begin_round();

  ProducerHandle h(rt, /*producer_id=*/7);
  for (std::size_t p = 0; p < 64; ++p) EXPECT_TRUE(h.pready(ch, p));
  EXPECT_EQ(h.claims_won(), 64u);
  EXPECT_EQ(h.coalesced(), 63u) << "ascending claims fold into one run";
  EXPECT_EQ(rt.ops_pushed(), 0u) << "run still in the thread arena";
  h.flush();
  EXPECT_EQ(rt.ops_pushed(), 1u) << "one op for the whole buffer";

  pump_until(fx.engine, rt,
             [&] { return fx.send->test() && fx.recv->test(); });
  EXPECT_TRUE(fx.send->test());
}

#if PARTIB_CHECK_ENABLED
TEST(ShardedEngine, ShardAffinityAuditorCatchesMistaggedChannel) {
  check::reset();
  ChannelFixture fx(16 * 64, 16, test::static_options(4, 1));
  settle(fx);
  ShardedProgressEngine rt(
      config(2, ShardedProgressEngine::Mode::kSharded));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  rt.begin_round();

  // Sabotage: re-tag the channel's verbs objects to a shard that will
  // never drain it.  The next drain-side QP touch must be reported.
  const int wrong = static_cast<int>(rt.shard_of(ch)) + 1;
  fx.send->tag_shard(wrong);

  check::ScopedShardAudit audit;
  const std::size_t before = check::shard_affinity_reports();
  rt.pready_range(ch, 0, 15);
  pump_until(fx.engine, rt,
             [&] { return fx.send->test() && fx.recv->test(); });
  EXPECT_GT(check::shard_affinity_reports(), before)
      << "drain posted on a QP tagged for another shard";
  check::reset();
}

TEST(ShardedEngine, ShardAffinityAuditorSilentWhenTagsMatch) {
  check::reset();
  ChannelFixture fx(16 * 64, 16, test::static_options(4, 1));
  settle(fx);
  ShardedProgressEngine rt(
      config(2, ShardedProgressEngine::Mode::kSharded));
  const std::size_t ch = rt.add_channel(fx.send.get(), fx.recv.get());

  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  rt.begin_round();

  check::ScopedShardAudit audit;
  rt.pready_range(ch, 0, 15);
  pump_until(fx.engine, rt,
             [&] { return fx.send->test() && fx.recv->test(); });
  EXPECT_EQ(check::shard_affinity_reports(), 0u);
  check::reset();
}
#endif  // PARTIB_CHECK_ENABLED

}  // namespace
}  // namespace partib::runtime
