#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "common/status.hpp"

namespace partib {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, /*overwrite=*/1);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : set_) ::unsetenv(name);
  }
  std::vector<const char*> set_;
};

TEST_F(EnvTest, StringUnsetReturnsNullopt) {
  ::unsetenv("PARTIB_TEST_UNSET");
  EXPECT_FALSE(env_string("PARTIB_TEST_UNSET").has_value());
}

TEST_F(EnvTest, StringEmptyTreatedAsUnset) {
  SetEnv("PARTIB_TEST_EMPTY", "");
  EXPECT_FALSE(env_string("PARTIB_TEST_EMPTY").has_value());
}

TEST_F(EnvTest, StringRoundTrip) {
  SetEnv("PARTIB_TEST_STR", "hello");
  EXPECT_EQ(env_string("PARTIB_TEST_STR").value(), "hello");
}

TEST_F(EnvTest, IntFallback) {
  ::unsetenv("PARTIB_TEST_INT");
  EXPECT_EQ(env_int("PARTIB_TEST_INT", 42), 42);
}

TEST_F(EnvTest, IntParsesValue) {
  SetEnv("PARTIB_TEST_INT", "123");
  EXPECT_EQ(env_int("PARTIB_TEST_INT", 0), 123);
}

TEST_F(EnvTest, IntParsesNegative) {
  SetEnv("PARTIB_TEST_INT", "-7");
  EXPECT_EQ(env_int("PARTIB_TEST_INT", 0), -7);
}

TEST_F(EnvTest, BoolVariants) {
  SetEnv("PARTIB_TEST_BOOL", "1");
  EXPECT_TRUE(env_bool("PARTIB_TEST_BOOL", false));
  SetEnv("PARTIB_TEST_BOOL", "true");
  EXPECT_TRUE(env_bool("PARTIB_TEST_BOOL", false));
  SetEnv("PARTIB_TEST_BOOL", "on");
  EXPECT_TRUE(env_bool("PARTIB_TEST_BOOL", false));
  SetEnv("PARTIB_TEST_BOOL", "0");
  EXPECT_FALSE(env_bool("PARTIB_TEST_BOOL", true));
  SetEnv("PARTIB_TEST_BOOL", "false");
  EXPECT_FALSE(env_bool("PARTIB_TEST_BOOL", true));
  SetEnv("PARTIB_TEST_BOOL", "off");
  EXPECT_FALSE(env_bool("PARTIB_TEST_BOOL", true));
}

TEST_F(EnvTest, BoolFallback) {
  ::unsetenv("PARTIB_TEST_BOOL");
  EXPECT_TRUE(env_bool("PARTIB_TEST_BOOL", true));
  EXPECT_FALSE(env_bool("PARTIB_TEST_BOOL", false));
}

TEST(StatusTest, ToStringCoversAllCodes) {
  EXPECT_STREQ(to_string(Status::kOk), "OK");
  EXPECT_STREQ(to_string(Status::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(to_string(Status::kInvalidState), "INVALID_STATE");
  EXPECT_STREQ(to_string(Status::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(to_string(Status::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(to_string(Status::kUnsupported), "UNSUPPORTED");
  EXPECT_STREQ(to_string(Status::kRemoteError), "REMOTE_ERROR");
}

TEST(StatusTest, OkHelper) {
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kInvalidArgument));
}

}  // namespace
}  // namespace partib
