// MpscRing: bounded multi-producer/single-consumer hand-off queue used by
// the sharded progress engine (runtime/shard.hpp).
#include "common/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace partib::common {
namespace {

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, FifoSingleThread) {
  MpscRing<int> ring(8);
  EXPECT_TRUE(ring.consumer_empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "full ring must reject";
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.consumer_empty());
}

TEST(MpscRing, WrapAroundManyTimes) {
  MpscRing<std::uint64_t> ring(4);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    if (i % 3 == 2) {  // drain in bursts so head/tail wrap unaligned
      std::uint64_t v;
      while (ring.try_pop(v)) EXPECT_EQ(v, expect++);
    }
  }
  std::uint64_t v;
  while (ring.try_pop(v)) EXPECT_EQ(v, expect++);
  EXPECT_EQ(expect, 1000u);
}

TEST(MpscRing, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  // Capacity far below the total so producers hit a full ring and retry:
  // exercises the CAS ticket path under contention, not just the happy
  // path.
  MpscRing<std::uint64_t> ring(64);
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> pushed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v =
            (static_cast<std::uint64_t>(t) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Single consumer: every producer's values must arrive in that
  // producer's order, and nothing may be lost or duplicated.
  std::uint64_t next[kProducers] = {};
  std::uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    std::uint64_t v;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const auto t = static_cast<int>(v >> 32);
    const std::uint64_t seq = v & 0xFFFFFFFFu;
    ASSERT_LT(t, kProducers);
    ASSERT_EQ(seq, next[t]) << "per-producer FIFO order violated";
    ++next[t];
    ++popped;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(pushed.load(), kProducers * kPerProducer);
  EXPECT_TRUE(ring.consumer_empty());
}

}  // namespace
}  // namespace partib::common
