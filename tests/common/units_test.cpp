#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace partib {
namespace {

TEST(Units, FormatBytesPicksLargestExactUnit) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1024), "1KiB");
  EXPECT_EQ(format_bytes(4 * KiB), "4KiB");
  EXPECT_EQ(format_bytes(MiB), "1MiB");
  EXPECT_EQ(format_bytes(256 * MiB), "256MiB");
  EXPECT_EQ(format_bytes(GiB), "1GiB");
}

TEST(Units, FormatBytesInexactFallsBackToBytes) {
  EXPECT_EQ(format_bytes(1500), "1500B");
  EXPECT_EQ(format_bytes(KiB + 1), "1025B");
}

TEST(Units, Pow2SizesInclusiveSweep) {
  const auto sizes = pow2_sizes(512, 4 * KiB);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes.front(), 512u);
  EXPECT_EQ(sizes.back(), 4 * KiB);
}

TEST(Units, Pow2SizesSingleElement) {
  const auto sizes = pow2_sizes(64, 64);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 64u);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(Bits, PrevPow2) {
  EXPECT_EQ(prev_pow2(0), 0u);
  EXPECT_EQ(prev_pow2(1), 1u);
  EXPECT_EQ(prev_pow2(3), 2u);
  EXPECT_EQ(prev_pow2(8), 8u);
  EXPECT_EQ(prev_pow2(9), 8u);
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 4096), 1);
  EXPECT_EQ(ceil_div<std::size_t>(4097, 4096), 2u);
}

TEST(Time, UnitConstructors) {
  EXPECT_EQ(usec(1), 1000);
  EXPECT_EQ(msec(1), 1'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_EQ(nsec(42), 42);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_usec(usec(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_msec(msec(4)), 4.0);
  EXPECT_DOUBLE_EQ(to_sec(sec(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_usec(nsec(1500)), 1.5);
}

TEST(Time, FormatDurationUnits) {
  EXPECT_EQ(format_duration(17), "17ns");
  EXPECT_EQ(format_duration(usec(3)), "3.000us");
  EXPECT_EQ(format_duration(msec(2) + usec(500)), "2.500ms");
  EXPECT_EQ(format_duration(sec(1)), "1.000s");
}

TEST(Time, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-17), "-17ns");
  EXPECT_EQ(format_duration(-usec(3)), "-3.000us");
}

}  // namespace
}  // namespace partib
