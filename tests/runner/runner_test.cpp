// The parallel experiment runner: thread pool, submission-order result
// collection (byte-identical output for any job count), fingerprints /
// derived seeds, and the persistent result cache.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "runner/fingerprint.hpp"
#include "runner/result_cache.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"

namespace partib::runner {
namespace {

// -- fingerprints ------------------------------------------------------------

TEST(Fingerprint, StableAcrossCallsAndSensitiveToEveryField) {
  auto fp = [](std::uint64_t a, double b, bool c, const char* s) {
    Hasher h;
    return h.str("test/v1").u64(a).f64(b).boolean(c).str(s).digest();
  };
  EXPECT_EQ(fp(1, 2.0, true, "x"), fp(1, 2.0, true, "x"));
  EXPECT_NE(fp(1, 2.0, true, "x"), fp(2, 2.0, true, "x"));
  EXPECT_NE(fp(1, 2.0, true, "x"), fp(1, 2.5, true, "x"));
  EXPECT_NE(fp(1, 2.0, true, "x"), fp(1, 2.0, false, "x"));
  EXPECT_NE(fp(1, 2.0, true, "x"), fp(1, 2.0, true, "y"));
}

TEST(Fingerprint, LengthPrefixPreventsStringAliasing) {
  Hasher a, b;
  a.str("ab").str("c");
  b.str("a").str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, KnownFnvVector) {
  // FNV-1a 64 of "a" — pins the algorithm so cache keys stay stable
  // across refactors (changing them would orphan every cached trial).
  Hasher h;
  h.bytes("a", 1);
  EXPECT_EQ(h.digest(), 0xaf63dc4c8601ec8cULL);
}

TEST(Fingerprint, DerivedSeedIsDeterministicNonZeroAndSpreads) {
  EXPECT_EQ(derive_seed(42), derive_seed(42));
  EXPECT_NE(derive_seed(42), derive_seed(43));
  EXPECT_NE(derive_seed(0), 0u);
  EXPECT_NE(derive_seed(~0ULL), 0u);
}

TEST(Fingerprint, HexIsFixedWidthLowercase) {
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xABCDEF0123456789ULL), "abcdef0123456789");
}

// -- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadPoolStillDrains) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DefaultJobsHonoursEnvOverride) {
  ::setenv("PARTIB_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3u);
  ::unsetenv("PARTIB_JOBS");
  EXPECT_GE(default_jobs(), 1u);
}

// -- run_trials --------------------------------------------------------------

struct TrialConfig {
  int value = 0;
};

std::uint64_t config_fp(const TrialConfig& c) {
  Hasher h;
  return h.str("trial-test/v1").i64(c.value).digest();
}

Codec<int> int_codec() {
  Codec<int> c;
  c.encode = [](const int& v) -> std::string { return std::to_string(v); };
  c.decode = [](std::string_view s, int* out) -> bool {
    *out = std::atoi(std::string(s).c_str());
    return !s.empty();
  };
  return c;
}

std::vector<TrialConfig> make_grid(int n) {
  std::vector<TrialConfig> grid;
  for (int i = 0; i < n; ++i) grid.push_back({i});
  return grid;
}

TEST(RunTrials, ResultsComeBackInSubmissionOrderForAnyJobCount) {
  const auto grid = make_grid(100);
  auto trial = [](const TrialConfig& c) { return c.value * 7; };
  for (std::size_t jobs : {1u, 2u, 8u}) {
    RunOptions opts;
    opts.jobs = jobs;
    const auto results =
        run_trials<TrialConfig, int>(grid, trial, config_fp, {}, opts);
    ASSERT_EQ(results.size(), grid.size());
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 7)
          << "jobs=" << jobs;
    }
  }
}

TEST(RunTrials, StatsCountExecutedTrials) {
  const auto grid = make_grid(10);
  RunOptions opts;
  opts.jobs = 2;
  RunStats stats;
  (void)run_trials<TrialConfig, int>(
      grid, [](const TrialConfig& c) { return c.value; }, config_fp, {},
      opts, &stats);
  EXPECT_EQ(stats.trials, 10u);
  EXPECT_EQ(stats.executed, 10u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

class RunnerCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("partib-runner-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(RunnerCacheTest, SecondRunIsAllCacheHits) {
  const auto grid = make_grid(20);
  std::atomic<int> executions{0};
  auto trial = [&executions](const TrialConfig& c) {
    executions.fetch_add(1, std::memory_order_relaxed);
    return c.value + 1000;
  };

  ResultCache cache(dir_.string());
  RunOptions opts;
  opts.jobs = 4;
  opts.cache = &cache;

  RunStats cold;
  const auto first = run_trials<TrialConfig, int>(grid, trial, config_fp,
                                                  int_codec(), opts, &cold);
  EXPECT_EQ(cold.executed, 20u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(executions.load(), 20);

  RunStats warm;
  const auto second = run_trials<TrialConfig, int>(grid, trial, config_fp,
                                                   int_codec(), opts, &warm);
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.cache_hits, 20u);
  EXPECT_EQ(executions.load(), 20);  // nothing re-ran
  EXPECT_EQ(first, second);
}

TEST_F(RunnerCacheTest, CorruptEntryFallsBackToExecution) {
  ResultCache cache(dir_.string());
  cache.store(0x1234, "valid payload");  // creates the directory
  // Clobber the entry on disk with bytes missing the magic header.
  const auto path = dir_ / (to_hex(0x1234) + ".trial");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not the magic header\n", f);
  std::fclose(f);
  EXPECT_FALSE(cache.load(0x1234).has_value());
}

TEST_F(RunnerCacheTest, StoreThenLoadRoundTrips) {
  ResultCache cache(dir_.string());
  EXPECT_FALSE(cache.load(7).has_value());
  cache.store(7, "payload bytes\nwith newline");
  const auto back = cache.load(7);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "payload bytes\nwith newline");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(RunnerCacheTest, OpenDefaultHonoursOffSwitch) {
  ::setenv("PARTIB_CACHE", "off", 1);
  EXPECT_EQ(ResultCache::open_default(), nullptr);
  ::unsetenv("PARTIB_CACHE");
}

TEST_F(RunnerCacheTest, UnwritableDirectoryDegradesSilently) {
  ResultCache cache("/proc/definitely/not/writable");
  cache.store(1, "x");                     // must not throw or abort
  EXPECT_FALSE(cache.load(1).has_value());  // and stays a miss
}

}  // namespace
}  // namespace partib::runner
