// ThreadPool stress: pool lifecycle churn, many-producer submission, and
// the run_trials exception-propagation contract.  Designed to run under
// TSan (see the tsan CI job): every test hammers the pool's locking from
// several threads at once, so a missed annotation or a shutdown race shows
// up as a data-race report rather than a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"

namespace partib::runner {
namespace {

TEST(ThreadPoolStress, RepeatedConstructionAndJoinDropsNoTasks) {
  // Shutdown-race regression: the destructor must publish `stopping_` and
  // drain every queued task before joining, for every pool generation.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 100; ++i) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    ASSERT_EQ(ran.load(), 100) << "round " << round;
  }
}

TEST(ThreadPoolStress, ManyProducersOnePool) {
  // submit() is documented safe from any thread; six producers push
  // concurrently while workers steal across deques.
  constexpr int kProducers = 6;
  constexpr int kTasksPerProducer = 400;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &ran] {
        for (int i = 0; i < kTasksPerProducer; ++i) {
          pool.submit(
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, TasksSubmittingTasksAllRun) {
  // A task may submit follow-up work from a worker thread.  Submitting
  // races shutdown (a fatal assert by contract), so the test waits for
  // quiescence — as run_trials does with its latch — before destroying
  // the pool.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&pool, &ran] {
        pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    while (ran.load(std::memory_order_relaxed) < 128) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(ran.load(), 128);
}

// -- run_trials exception propagation ---------------------------------------

TEST(RunTrialsExceptions, ThrowingTrialRethrowsOnCallerWithoutDeadlock) {
  // One trial throwing must not strand latch waiters or leave the pool
  // un-joined; the exception surfaces on the submitting thread exactly as
  // the serial path would surface it.
  std::vector<int> configs(32);
  for (int i = 0; i < 32; ++i) configs[i] = i;
  std::atomic<int> executed{0};

  auto trial = [&executed](int c) -> int {
    if (c == 7) throw std::runtime_error("trial 7 failed");
    executed.fetch_add(1, std::memory_order_relaxed);
    return c * 2;
  };
  auto fingerprint = [](int c) { return static_cast<std::uint64_t>(c); };

  RunOptions opts;
  opts.jobs = 4;
  EXPECT_THROW(
      (run_trials<int, int>(configs, trial, fingerprint, Codec<int>{}, opts)),
      std::runtime_error);
  // Every other trial still ran to completion before the rethrow: the
  // latch counts down on every exit path, so the pool drained fully.
  EXPECT_EQ(executed.load(), 31);
}

TEST(RunTrialsExceptions, SerialPathThrowsIdentically) {
  std::vector<int> configs{1, 2, 3};
  auto trial = [](int c) -> int {
    if (c == 2) throw std::invalid_argument("bad config");
    return c;
  };
  auto fingerprint = [](int c) { return static_cast<std::uint64_t>(c); };
  RunOptions opts;
  opts.jobs = 1;
  EXPECT_THROW(
      (run_trials<int, int>(configs, trial, fingerprint, Codec<int>{}, opts)),
      std::invalid_argument);
}

TEST(RunTrialsExceptions, MultipleThrowingTrialsStillJoinCleanly) {
  // Several workers throwing concurrently exercise the ErrorBox mutex and
  // the every-path latch count-down together.
  std::vector<int> configs(64);
  for (int i = 0; i < 64; ++i) configs[i] = i;
  auto trial = [](int c) -> int {
    if (c % 2 == 0) throw std::runtime_error("even configs all fail");
    return c;
  };
  auto fingerprint = [](int c) { return static_cast<std::uint64_t>(c); };
  RunOptions opts;
  opts.jobs = 8;
  EXPECT_THROW(
      (run_trials<int, int>(configs, trial, fingerprint, Codec<int>{}, opts)),
      std::runtime_error);
}

}  // namespace
}  // namespace partib::runner
