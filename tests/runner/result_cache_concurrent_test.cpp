// ResultCache under concurrent readers and writers.  The cache's contract
// is torn-read freedom: load() returns either a complete payload or a
// miss, never a partial file (store() writes a unique temp file and
// renames it into place).  These tests drive overlapping fingerprints from
// several threads and verify that contract; run them under TSan for the
// memory-level version of the same claim.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "runner/result_cache.hpp"

namespace partib::runner {
namespace {

class ResultCacheConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/partib_cache_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Deterministic per-key payload, large enough that a torn write would
  /// be visible as a truncated or mixed-prefix string.
  static std::string payload_for(std::uint64_t key) {
    std::string p;
    p.reserve(4096 + 32);
    p += "key=" + std::to_string(key) + ";";
    p.append(4096, static_cast<char>('a' + (key % 26)));
    return p;
  }

  std::string dir_;
};

TEST_F(ResultCacheConcurrentTest, OverlappingReadersAndWritersNeverTear) {
  ResultCache cache(dir_);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr std::uint64_t kKeys = 16;
  std::atomic<int> bad{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &bad, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(t * kIters + i) % kKeys;
        if (t % 2 == 0) {
          cache.store(key, payload_for(key));
        } else if (auto got = cache.load(key)) {
          if (*got != payload_for(key)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0) << "torn or mixed payload observed";

  // Quiescent state: every key a writer thread produced reads back whole.
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    auto got = cache.load(key);
    if (got) {
      EXPECT_EQ(*got, payload_for(key)) << "key " << key;
    }
  }
}

TEST_F(ResultCacheConcurrentTest, DuplicateWritersOfOneKeyConverge) {
  // Concurrent writers of the *same* fingerprint model duplicate configs
  // in one grid: each renames a complete temp file, so the survivor is
  // byte-identical regardless of interleaving.
  ResultCache cache(dir_);
  constexpr std::uint64_t kKey = 42;
  std::vector<std::thread> writers;
  for (int t = 0; t < 6; ++t) {
    writers.emplace_back(
        [&cache] { for (int i = 0; i < 100; ++i) cache.store(kKey, payload_for(kKey)); });
  }
  for (std::thread& t : writers) t.join();
  auto got = cache.load(kKey);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload_for(kKey));
  // No leaked temp files once every rename landed.
  std::size_t stray = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().string().find(".tmp.") != std::string::npos) ++stray;
  }
  EXPECT_EQ(stray, 0u);
}

TEST_F(ResultCacheConcurrentTest, DisjointKeysAllPersist) {
  ResultCache cache(dir_);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      const std::uint64_t base = 1000u * static_cast<std::uint64_t>(t);
      for (std::uint64_t k = 0; k < kPerThread; ++k) {
        cache.store(base + k, payload_for(base + k));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t base = 1000u * static_cast<std::uint64_t>(t);
    for (std::uint64_t k = 0; k < kPerThread; ++k) {
      auto got = cache.load(base + k);
      ASSERT_TRUE(got.has_value()) << "key " << base + k;
      EXPECT_EQ(*got, payload_for(base + k));
    }
  }
}

}  // namespace
}  // namespace partib::runner
