// The PMPI-style profiler and its Fig-12 min-delta estimator.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "prof/profiler.hpp"

namespace partib::prof {
namespace {

TEST(Profiler, RecordsRounds) {
  PartProfiler p(4);
  p.begin_round(100);
  p.record_pready(0, 110);
  p.record_arrival(0, 150);
  ASSERT_EQ(p.rounds().size(), 1u);
  EXPECT_EQ(p.rounds()[0].start_time, 100);
  EXPECT_EQ(p.rounds()[0].pready_times[0], 110);
  EXPECT_EQ(p.rounds()[0].arrival_times[0], 150);
  EXPECT_EQ(p.rounds()[0].pready_times[1], -1);  // unrecorded
}

TEST(Profiler, MinDeltaExcludesLaggard) {
  PartProfiler p(4);
  p.begin_round(0);
  p.record_pready(0, 100);
  p.record_pready(1, 130);
  p.record_pready(2, 110);
  p.record_pready(3, 5000);  // laggard
  // Non-laggard spread: 130 - 100 = 30.
  EXPECT_EQ(PartProfiler::min_delta_estimate(p.rounds()[0]), 30);
}

TEST(Profiler, MinDeltaLaggardDetectedAnywhere) {
  PartProfiler p(4);
  p.begin_round(0);
  p.record_pready(0, 9000);  // laggard at index 0
  p.record_pready(1, 100);
  p.record_pready(2, 160);
  p.record_pready(3, 120);
  EXPECT_EQ(PartProfiler::min_delta_estimate(p.rounds()[0]), 60);
}

TEST(Profiler, MinDeltaNeedsThreePreadys) {
  PartProfiler p(4);
  p.begin_round(0);
  p.record_pready(0, 100);
  p.record_pready(1, 500);
  EXPECT_EQ(PartProfiler::min_delta_estimate(p.rounds()[0]), 0);
}

TEST(Profiler, MeanMinDeltaAveragesRounds) {
  PartProfiler p(3);
  p.begin_round(0);
  p.record_pready(0, 100);
  p.record_pready(1, 120);
  p.record_pready(2, 9000);
  p.begin_round(10000);
  p.record_pready(0, 10100);
  p.record_pready(1, 10140);
  p.record_pready(2, 19000);
  EXPECT_EQ(p.mean_min_delta(), (20 + 40) / 2);
}

TEST(Profiler, EstimatedCommTimeIsBandwidthEquation) {
  // comm = bytes / bandwidth; 1 MiB at 12.1 B/ns.
  const Duration t = PartProfiler::estimated_comm_time(MiB, 12.1);
  EXPECT_EQ(t, static_cast<Duration>(static_cast<double>(MiB) / 12.1));
}

TEST(Profiler, CsvContainsEveryPartitionRow) {
  PartProfiler p(2);
  p.begin_round(0);
  p.record_pready(0, 10);
  p.record_arrival(0, 20);
  p.begin_round(100);
  const std::string csv = p.to_csv();
  EXPECT_NE(csv.find("round,partition,pready_ns,arrival_ns"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,10,20"), std::string::npos);
  EXPECT_NE(csv.find("0,1,-1,-1"), std::string::npos);
  EXPECT_NE(csv.find("1,0,-1,-1"), std::string::npos);
}

}  // namespace
}  // namespace partib::prof
