// TuningTable: CSV round-trip, malformed input, and the indexed
// nearest-size lookup (log-scale distance, ties toward the smaller size).
#include <gtest/gtest.h>

#include "agg/tuning_table.hpp"
#include "common/units.hpp"

namespace partib::agg {
namespace {

TuningTable small_table() {
  TuningTable t;
  t.set(4, 2 * KiB, {2, 1});
  t.set(4, 8 * KiB, {4, 2});
  t.set(32, 64 * KiB, {16, 4});
  t.set(32, 1 * MiB, {32, 4});
  return t;
}

TEST(TuningTableCsv, RoundTripPreservesEveryEntry) {
  const TuningTable t = small_table();
  const TuningTable back = TuningTable::from_csv(t.to_csv());
  EXPECT_EQ(back.size(), t.size());
  // Round-tripping again must be a fixed point, byte for byte.
  EXPECT_EQ(back.to_csv(), t.to_csv());
  const auto e = back.lookup(4, 8 * KiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->transport_partitions, 4u);
  EXPECT_EQ(e->qp_count, 2);
}

TEST(TuningTableCsv, HeaderOnlyYieldsEmptyTable) {
  const TuningTable t = TuningTable::from_csv(
      "user_partitions,total_bytes,transport_partitions,qp_count\n");
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TuningTableCsv, EmptyLinesAreSkipped) {
  const TuningTable t = TuningTable::from_csv(
      "user_partitions,total_bytes,transport_partitions,qp_count\n"
      "\n"
      "4,2048,2,1\n"
      "\n"
      "4,4096,4,2\n"
      "\n");
  EXPECT_EQ(t.size(), 2u);
  ASSERT_TRUE(t.lookup(4, 4096).has_value());
  EXPECT_EQ(t.lookup(4, 4096)->transport_partitions, 4u);
}

TEST(TuningTableCsvDeathTest, MalformedRowAborts) {
  // Malformed persisted tables are a hard configuration error: better to
  // die loudly than silently drop tuned entries.
  EXPECT_DEATH(TuningTable::from_csv("4,2048,notanumber,1\n"),
               "malformed tuning-table CSV line");
  EXPECT_DEATH(TuningTable::from_csv("4,2048\n"),
               "malformed tuning-table CSV line");
}

TEST(TuningTableCsv, SetOverwriteKeepsCountStable) {
  TuningTable t;
  t.set(4, 2048, {2, 1});
  t.set(4, 2048, {4, 2});  // overwrite, not a second entry
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(4, 2048)->transport_partitions, 4u);
}

TEST(TuningTableLookup, ExactHitBeatsNearest) {
  const TuningTable t = small_table();
  const auto e = t.lookup_nearest(4, 8 * KiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->transport_partitions, 4u);
}

TEST(TuningTableLookup, NearestPicksLogClosestSize) {
  const TuningTable t = small_table();
  // 3 KiB is log2-closer to 2 KiB (0.58 octaves) than to 8 KiB (1.4).
  const auto lo = t.lookup_nearest(4, 3 * KiB);
  ASSERT_TRUE(lo.has_value());
  EXPECT_EQ(lo->transport_partitions, 2u);
  // 6 KiB is log2-closer to 8 KiB (0.41) than to 2 KiB (1.58).
  const auto hi = t.lookup_nearest(4, 6 * KiB);
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(hi->transport_partitions, 4u);
}

TEST(TuningTableLookup, EquidistantTieResolvesToSmallerSize) {
  const TuningTable t = small_table();
  // 4 KiB is exactly one octave from both 2 KiB and 8 KiB.
  const auto e = t.lookup_nearest(4, 4 * KiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->transport_partitions, 2u);  // the 2 KiB entry
}

TEST(TuningTableLookup, OutsideRangeClampsToEndpoints) {
  const TuningTable t = small_table();
  EXPECT_EQ(t.lookup_nearest(4, 1)->transport_partitions, 2u);
  EXPECT_EQ(t.lookup_nearest(4, 1 * GiB)->transport_partitions, 4u);
}

TEST(TuningTableLookup, AbsentPartitionCountIsNullopt) {
  const TuningTable t = small_table();
  EXPECT_FALSE(t.lookup_nearest(64, 8 * KiB).has_value());
  EXPECT_FALSE(t.lookup(64, 8 * KiB).has_value());
}

TEST(TuningTablePrebuilt, NiagaraTableIsWellFormed) {
  const TuningTable t = TuningTable::niagara_prebuilt();
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.size(), 56u);  // 4 partition counts x 14 sizes
  // Spot check one row and the round-trip invariant.
  const auto e = t.lookup(32, 512 * KiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->transport_partitions, 32u);
  EXPECT_EQ(TuningTable::from_csv(t.to_csv()).to_csv(), t.to_csv());
}

}  // namespace
}  // namespace partib::agg
