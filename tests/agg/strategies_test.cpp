// Aggregation strategies and the tuning table.
#include <gtest/gtest.h>

#include "agg/strategies.hpp"
#include "agg/tuning_table.hpp"
#include "common/units.hpp"

namespace partib::agg {
namespace {

TEST(Clamp, PreservesPowerOfTwoAndRange) {
  EXPECT_EQ(clamp_transport_partitions(0, 16), 1u);
  EXPECT_EQ(clamp_transport_partitions(1, 16), 1u);
  EXPECT_EQ(clamp_transport_partitions(8, 16), 8u);
  EXPECT_EQ(clamp_transport_partitions(16, 16), 16u);
  EXPECT_EQ(clamp_transport_partitions(32, 16), 16u);  // clamp to user count
  EXPECT_EQ(clamp_transport_partitions(6, 16), 4u);    // round down to pow2
}

TEST(Persistent, OneMessagePerPartitionOnUcx) {
  const PersistentBaseline agg;
  const Plan p = agg.plan(32, 1 * MiB);
  EXPECT_EQ(p.transport_partitions, 32u);
  EXPECT_EQ(p.qp_count, 1);
  EXPECT_EQ(p.path, Path::kUcxLike);
  EXPECT_FALSE(p.timer_based);
}

TEST(Static, HonoursRequestWithinUserCount) {
  const StaticAggregator agg(8, 2);
  const Plan p = agg.plan(32, 1 * MiB);
  EXPECT_EQ(p.transport_partitions, 8u);
  EXPECT_EQ(p.qp_count, 2);
  EXPECT_EQ(p.path, Path::kVerbs);
}

TEST(Static, ClampsToUserPartitions) {
  const StaticAggregator agg(32, 1);
  EXPECT_EQ(agg.plan(4, 1 * MiB).transport_partitions, 4u);
}

TEST(PLogGP, FollowsTableI) {
  const PLogGPAggregator agg(model::LogGPParams::niagara_mpi_measured());
  EXPECT_EQ(agg.plan(32, 128 * KiB).transport_partitions, 1u);
  EXPECT_EQ(agg.plan(32, 1 * MiB).transport_partitions, 2u);
  EXPECT_EQ(agg.plan(32, 4 * MiB).transport_partitions, 4u);
  EXPECT_EQ(agg.plan(32, 16 * MiB).transport_partitions, 8u);
  EXPECT_EQ(agg.plan(32, 64 * MiB).transport_partitions, 16u);
  EXPECT_EQ(agg.plan(32, 256 * MiB).transport_partitions, 32u);
}

TEST(PLogGP, FallsBackToUserRequestWhenModelWantsMore) {
  // Paper §IV-C: "If the model suggests a transport partition count that
  // is larger than what the user requested, then we fall back to the
  // user's request."
  const PLogGPAggregator agg(model::LogGPParams::niagara_mpi_measured());
  EXPECT_EQ(agg.plan(4, 256 * MiB).transport_partitions, 4u);
  EXPECT_EQ(agg.plan(2, 256 * MiB).transport_partitions, 2u);
}

TEST(PLogGP, QpCountCoversOutstandingLimit) {
  const PLogGPAggregator agg(model::LogGPParams::niagara_mpi_measured(),
                             model::OptimizerConfig{msec(4), 64},
                             /*max_wr_per_qp=*/16);
  const Plan p32 = agg.plan(64, 256 * MiB);
  EXPECT_GE(p32.qp_count,
            static_cast<int>(p32.transport_partitions + 15) / 16);
  EXPECT_EQ(agg.plan(32, 64 * KiB).qp_count, 1);
}

TEST(Timer, InheritsPlanAndAddsDelta) {
  const TimerPLogGPAggregator agg(model::LogGPParams::niagara_mpi_measured(),
                                  usec(35));
  const Plan p = agg.plan(32, 1 * MiB);
  EXPECT_TRUE(p.timer_based);
  EXPECT_EQ(p.timer_delta, usec(35));
  EXPECT_EQ(p.transport_partitions, 2u);  // same as PLogGP
  EXPECT_EQ(agg.delta(), usec(35));
}

TEST(TuningTable, ExactLookup) {
  TuningTable t;
  t.set(32, 1 * MiB, {4, 2});
  const auto e = t.lookup(32, 1 * MiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->transport_partitions, 4u);
  EXPECT_EQ(e->qp_count, 2);
  EXPECT_FALSE(t.lookup(32, 2 * MiB).has_value());
  EXPECT_FALSE(t.lookup(16, 1 * MiB).has_value());
}

TEST(TuningTable, NearestFallsBackOnLogScale) {
  TuningTable t;
  t.set(32, 1 * MiB, {4, 2});
  t.set(32, 16 * MiB, {16, 4});
  const auto near_small = t.lookup_nearest(32, 2 * MiB);
  ASSERT_TRUE(near_small.has_value());
  EXPECT_EQ(near_small->transport_partitions, 4u);
  const auto near_big = t.lookup_nearest(32, 8 * MiB);
  ASSERT_TRUE(near_big.has_value());
  EXPECT_EQ(near_big->transport_partitions, 16u);
  EXPECT_FALSE(t.lookup_nearest(64, 1 * MiB).has_value());
}

TEST(TuningTable, CsvRoundTrip) {
  TuningTable t;
  t.set(4, 64 * KiB, {2, 1});
  t.set(32, 1 * MiB, {4, 2});
  const TuningTable parsed = TuningTable::from_csv(t.to_csv());
  EXPECT_EQ(parsed.size(), 2u);
  const auto e = parsed.lookup(32, 1 * MiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->transport_partitions, 4u);
  EXPECT_EQ(e->qp_count, 2);
}

TEST(TuningTable, PrebuiltCoversBenchmarkSpace) {
  const TuningTable t = TuningTable::niagara_prebuilt();
  EXPECT_FALSE(t.empty());
  for (std::size_t parts : {4u, 32u, 128u}) {
    for (std::size_t bytes = 512; bytes <= 256 * MiB; bytes *= 4) {
      EXPECT_TRUE(t.lookup_nearest(parts, bytes).has_value())
          << parts << " " << bytes;
    }
  }
}

TEST(TuningTable, PrebuiltTrendsMatchPLogGP) {
  // §V-B1: the brute-force table shows the same trend as the model —
  // transport partitions grow with message size.
  const TuningTable t = TuningTable::niagara_prebuilt();
  std::size_t prev = 1;
  for (std::size_t bytes = 512; bytes <= 256 * MiB; bytes *= 4) {
    const auto e = t.lookup_nearest(32, bytes);
    ASSERT_TRUE(e.has_value());
    EXPECT_GE(e->transport_partitions, prev);
    prev = e->transport_partitions;
  }
}

TEST(TuningTableAggregator, UsesTableEntries) {
  TuningTable t;
  t.set(16, 64 * KiB, {8, 2});
  const TuningTableAggregator agg(std::move(t));
  const Plan p = agg.plan(16, 64 * KiB);
  EXPECT_EQ(p.transport_partitions, 8u);
  EXPECT_EQ(p.qp_count, 2);
}

TEST(TuningTableAggregator, ClampsTableValueToUserCount) {
  TuningTable t;
  t.set(4, 64 * KiB, {32, 1});  // table says more than the user has
  const TuningTableAggregator agg(std::move(t));
  EXPECT_EQ(agg.plan(4, 64 * KiB).transport_partitions, 4u);
}

}  // namespace
}  // namespace partib::agg
