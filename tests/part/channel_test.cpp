// End-to-end tests of a partitioned channel: handshake, rounds, data
// integrity, restart semantics, and aggregation behaviour on the wire.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/backend_fixture.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

// End-to-end channel behaviour is transport-independent, so the fixture
// suite runs over every conformance backend.  The two matcher-ordering
// tests at the bottom construct a classic DES world directly and stay
// DES-only under a separate suite name (gtest forbids mixing TEST and
// TEST_P in one suite).
using Channel = test::BackendTest;

TEST_P(Channel, SingleRoundDeliversData) {
  ChannelFixture fx(64 * KiB, 16, ploggp_options());
  fx.run_round(1);
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST_P(Channel, HandshakeCompletesAfterInit) {
  ChannelFixture fx(4 * KiB, 4, ploggp_options());
  EXPECT_FALSE(fx.send->handshake_done());
  fx.drive();
  EXPECT_TRUE(fx.send->handshake_done());
  EXPECT_TRUE(fx.recv->matched());
}

TEST_P(Channel, PersistentBaselineSendsOneWrPerPartition) {
  ChannelFixture fx(64 * KiB, 16, persistent_options());
  fx.run_round(1);
  EXPECT_EQ(fx.send->wrs_posted_total(), 16u);
  EXPECT_EQ(fx.recv->messages_received_total(), 16u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST_P(Channel, FullAggregationSendsOneWr) {
  ChannelFixture fx(64 * KiB, 16, static_options(/*tp=*/1, /*qps=*/1));
  fx.run_round(1);
  EXPECT_EQ(fx.send->wrs_posted_total(), 1u);
  EXPECT_EQ(fx.recv->messages_received_total(), 1u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST_P(Channel, StaticPlanUsesRequestedTransportPartitions) {
  ChannelFixture fx(64 * KiB, 32, static_options(/*tp=*/8, /*qps=*/2));
  EXPECT_EQ(fx.send->transport_partitions(), 8u);
  EXPECT_EQ(fx.send->group_size(), 4u);
  EXPECT_EQ(fx.send->qp_count(), 2);
  fx.run_round(1);
  EXPECT_EQ(fx.send->wrs_posted_total(), 8u);
}

TEST_P(Channel, MultipleRoundsReuseTheChannel) {
  ChannelFixture fx(32 * KiB, 8, ploggp_options());
  for (int round = 1; round <= 5; ++round) {
    fx.run_round(round);
    ASSERT_TRUE(fx.send->test()) << "round " << round;
    ASSERT_TRUE(fx.recv->test()) << "round " << round;
    ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "round " << round;
  }
  EXPECT_EQ(fx.send->round(), 5);
}

TEST_P(Channel, ParrivedTracksIndividualPartitions) {
  ChannelFixture fx(16 * KiB, 4, persistent_options());
  fill_pattern(fx.sbuf, 1);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  // Only partition 2 is marked ready.
  ASSERT_TRUE(ok(fx.send->pready(2)));
  fx.drive();
  EXPECT_FALSE(fx.recv->test());
  EXPECT_TRUE(fx.recv->parrived(2));
  EXPECT_FALSE(fx.recv->parrived(0));
  EXPECT_FALSE(fx.recv->parrived(1));
  EXPECT_FALSE(fx.recv->parrived(3));
  // The rest arrive; the round completes.
  ASSERT_TRUE(ok(fx.send->pready(0)));
  ASSERT_TRUE(ok(fx.send->pready(1)));
  ASSERT_TRUE(ok(fx.send->pready(3)));
  fx.drive();
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(fx.send->test());
}

TEST_P(Channel, PreadyRangeMarksInclusiveRange) {
  ChannelFixture fx(16 * KiB, 8, static_options(8, 1));
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  ASSERT_TRUE(ok(fx.send->pready_range(0, 7)));
  fx.drive();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
}

TEST_P(Channel, WhenCompleteFiresOnRoundCompletion) {
  ChannelFixture fx(8 * KiB, 4, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  bool send_done = false;
  bool recv_done = false;
  fx.send->when_complete([&] { send_done = true; });
  fx.recv->when_complete([&] { recv_done = true; });
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(ok(fx.send->pready(i)));
  fx.drive();
  EXPECT_TRUE(send_done);
  EXPECT_TRUE(recv_done);
}

TEST_P(Channel, RecvCompletionNotBeforeSendCompletion) {
  // The receiver observes completion no later than the sender does plus
  // the ACK latency; both must see consistent round state afterwards.
  ChannelFixture fx(128 * KiB, 16, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  Time send_done = -1;
  Time recv_done = -1;
  fx.send->when_complete([&] { send_done = fx.engine.now(); });
  fx.recv->when_complete([&] { recv_done = fx.engine.now(); });
  for (std::size_t i = 0; i < 16; ++i) ASSERT_TRUE(ok(fx.send->pready(i)));
  fx.drive();
  ASSERT_GE(send_done, 0);
  ASSERT_GE(recv_done, 0);
  // RC semantics: the sender's completion implies remote delivery, so the
  // receiver's arrival time cannot be later than the sender's completion.
  EXPECT_LE(recv_done, send_done);
}

TEST(ChannelMatching, ReverseInitOrderStillMatches) {
  // Precv_init first, Psend_init second (matcher queues the recv side).
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> sbuf(16 * KiB), rbuf(16 * KiB);
  std::unique_ptr<part::PrecvRequest> recv;
  std::unique_ptr<part::PsendRequest> send;
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), rbuf, 4, 0, 9, 0,
                                  ploggp_options(), &recv)));
  engine.run();  // receiver waits alone
  EXPECT_FALSE(recv->matched());
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), sbuf, 4, 1, 9, 0,
                                  ploggp_options(), &send)));
  engine.run();
  EXPECT_TRUE(recv->matched());
  EXPECT_TRUE(send->handshake_done());
}

TEST(ChannelMatching, TwoChannelsSameTagMatchInOrder) {
  // Two Psend_init/Precv_init pairs with identical (src, tag, comm) must
  // match in posted order (MPI Partitioned ordering rule).
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> s1(4 * KiB), s2(8 * KiB);
  std::vector<std::byte> r1(4 * KiB), r2(8 * KiB);
  std::unique_ptr<part::PsendRequest> send1, send2;
  std::unique_ptr<part::PrecvRequest> recv1, recv2;
  const auto opts = ploggp_options();
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), s1, 4, 1, 5, 0, opts, &send1)));
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), s2, 8, 1, 5, 0, opts, &send2)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), r1, 4, 0, 5, 0, opts, &recv1)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), r2, 8, 0, 5, 0, opts, &recv2)));
  engine.run();
  ASSERT_TRUE(recv1->matched());
  ASSERT_TRUE(recv2->matched());

  fill_pattern(s1, 1);
  fill_pattern(s2, 2);
  ASSERT_TRUE(ok(send1->start()));
  ASSERT_TRUE(ok(send2->start()));
  ASSERT_TRUE(ok(recv1->start()));
  ASSERT_TRUE(ok(recv2->start()));
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(ok(send1->pready(i)));
  for (std::size_t i = 0; i < 8; ++i) ASSERT_TRUE(ok(send2->pready(i)));
  engine.run();
  EXPECT_EQ(r1, s1);
  EXPECT_EQ(r2, s2);
}

PARTIB_INSTANTIATE_BACKENDS(Channel);

}  // namespace
}  // namespace partib::test
