// part::Options::defaults() and its environment-variable plumbing.
#include <gtest/gtest.h>

#include <cstdlib>

#include "agg/strategies.hpp"
#include "common/log.hpp"
#include "part/options.hpp"

namespace partib::part {
namespace {

class OptionsEnv : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("PARTIB_TIMER_DELTA_US");
    ::unsetenv("PARTIB_TRANSPORT_PARTITIONS");
    ::unsetenv("PARTIB_QP_COUNT");
  }
};

TEST_F(OptionsEnv, DefaultIsPlogGP) {
  const Options o = Options::defaults();
  ASSERT_NE(o.aggregator, nullptr);
  EXPECT_STREQ(o.aggregator->name(), "ploggp");
  EXPECT_EQ(o.transport_partitions_override, 0u);
  EXPECT_EQ(o.qp_count_override, 0);
}

TEST_F(OptionsEnv, DeltaEnvSelectsTimerAggregator) {
  ::setenv("PARTIB_TIMER_DELTA_US", "35", 1);
  const Options o = Options::defaults();
  ASSERT_NE(o.aggregator, nullptr);
  EXPECT_STREQ(o.aggregator->name(), "timer-ploggp");
  const auto* timer =
      dynamic_cast<const agg::TimerPLogGPAggregator*>(o.aggregator.get());
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->delta(), usec(35));
}

TEST_F(OptionsEnv, OverridesReadFromEnvironment) {
  ::setenv("PARTIB_TRANSPORT_PARTITIONS", "8", 1);
  ::setenv("PARTIB_QP_COUNT", "2", 1);
  const Options o = Options::defaults();
  EXPECT_EQ(o.transport_partitions_override, 8u);
  EXPECT_EQ(o.qp_count_override, 2);
}

TEST_F(OptionsEnv, UcxModelDefaultsAreOrdered) {
  const Options o = Options::defaults();
  EXPECT_LT(o.ucx.bcopy_max, o.ucx.rndv_min);
  EXPECT_GT(o.ucx.eager_wire_share, 0.0);
  EXPECT_LE(o.ucx.eager_wire_share, 1.0);
  EXPECT_GT(o.ucx.o_zcopy, o.ucx.o_bcopy);
}

TEST(Log, LevelParsesOnce) {
  // Smoke: emitting below/above the configured level must not crash.
  PARTIB_WARN("warn %d", 1);
  PARTIB_INFO("info %s", "x");
  PARTIB_DEBUG("debug");
  SUCCEED();
}

}  // namespace
}  // namespace partib::part
