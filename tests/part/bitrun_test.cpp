// Differential test: the word-wise bitmap run extraction in
// part/bitrun.hpp must emit exactly the (first, count) sequence of the
// seed's byte-scan (tests/support/reference_bitrun.hpp) and leave the
// same sent state behind — each emitted run becomes one WR post, so the
// figure CSV fingerprints depend on this equivalence bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "part/bitrun.hpp"
#include "support/reference_bitrun.hpp"

namespace partib::part {
namespace {

using Seg = std::pair<std::size_t, std::size_t>;

/// Drive both implementations over the same (arrived, sent) state and
/// return {new_runs, ref_runs}; also checks the resulting sent bitmaps
/// agree bit for bit.
std::pair<std::vector<Seg>, std::vector<Seg>> flush_both(
    const std::vector<std::uint8_t>& arrived_bytes,
    std::vector<std::uint8_t> sent_bytes, std::size_t base, std::size_t len) {
  const std::size_t total = arrived_bytes.size();
  std::vector<std::uint64_t> arrived_words(bitmap_words(total), 0);
  std::vector<std::uint64_t> sent_words(bitmap_words(total), 0);
  for (std::size_t i = 0; i < total; ++i) {
    if (arrived_bytes[i]) bitmap_set(arrived_words.data(), i);
    if (sent_bytes[i]) bitmap_set(sent_words.data(), i);
  }

  std::vector<Seg> got;
  flush_pending_runs(arrived_words.data(), sent_words.data(), base, len,
                     [&](std::size_t first, std::size_t count) {
                       got.emplace_back(first, count);
                     });
  std::vector<Seg> want;
  partib::test::reference_flush_runs(arrived_bytes, sent_bytes, base, len,
                       [&](std::size_t first, std::size_t count) {
                         want.emplace_back(first, count);
                       });

  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(bitmap_test(sent_words.data(), i), sent_bytes[i] != 0)
        << "sent state diverges at bit " << i;
  }
  return {got, want};
}

TEST(BitRun, EmptyGroupEmitsNothing) {
  std::vector<std::uint8_t> arrived(64, 0), sent(64, 0);
  auto [got, want] = flush_both(arrived, sent, 0, 64);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(got, want);
}

TEST(BitRun, FullWordIsOneRun) {
  std::vector<std::uint8_t> arrived(64, 1), sent(64, 0);
  auto [got, want] = flush_both(arrived, sent, 0, 64);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Seg(0, 64));
  EXPECT_EQ(got, want);
}

TEST(BitRun, RunCrossingWordBoundaryEmittedOnce) {
  std::vector<std::uint8_t> arrived(192, 0), sent(192, 0);
  for (std::size_t i = 60; i < 140; ++i) arrived[i] = 1;
  auto [got, want] = flush_both(arrived, sent, 0, 192);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Seg(60, 80));
  EXPECT_EQ(got, want);
}

TEST(BitRun, SentBitsSplitRuns) {
  std::vector<std::uint8_t> arrived(64, 1), sent(64, 0);
  sent[10] = sent[11] = sent[40] = 1;
  auto [got, want] = flush_both(arrived, sent, 0, 64);
  EXPECT_EQ(got, (std::vector<Seg>{{0, 10}, {12, 28}, {41, 23}}));
  EXPECT_EQ(got, want);
}

TEST(BitRun, UnalignedGroupWindowRespected) {
  // Group [37, 101): arrivals outside the window must be invisible.
  std::vector<std::uint8_t> arrived(128, 1), sent(128, 0);
  auto [got, want] = flush_both(arrived, sent, 37, 64);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Seg(37, 64));
  EXPECT_EQ(got, want);
}

TEST(BitRun, AlternatingBitsEmitSingletonsAscending) {
  std::vector<std::uint8_t> arrived(70, 0), sent(70, 0);
  for (std::size_t i = 0; i < 70; i += 2) arrived[i] = 1;
  auto [got, want] = flush_both(arrived, sent, 0, 70);
  EXPECT_EQ(got.size(), 35u);
  EXPECT_EQ(got, want);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].first, got[i].first);
  }
}

TEST(BitRun, DifferentialFuzz) {
  std::mt19937 rng(20260806);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t total = 1 + rng() % 300;
    std::vector<std::uint8_t> arrived(total), sent(total);
    // Biased fill so long runs, isolated bits, and already-sent overlap
    // all occur; sent ⊆ arrived as in the real request (a partition is
    // only marked sent after it arrived).
    const unsigned density = 1 + rng() % 9;
    for (std::size_t i = 0; i < total; ++i) {
      arrived[i] = (rng() % 10) < density ? 1 : 0;
      sent[i] = (arrived[i] != 0 && rng() % 4 == 0) ? 1 : 0;
    }
    const std::size_t base = rng() % total;
    const std::size_t len = 1 + rng() % (total - base);
    auto [got, want] = flush_both(arrived, sent, base, len);
    ASSERT_EQ(got, want) << "iter " << iter << " base " << base << " len "
                         << len;
  }
}

TEST(BitRun, SetRangeMatchesPerBitLoop) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t total = 1 + rng() % 300;
    const std::size_t first = rng() % total;
    const std::size_t count = rng() % (total - first + 1);
    std::vector<std::uint64_t> words(bitmap_words(total), 0);
    bitmap_set_range(words.data(), first, count);
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(bitmap_test(words.data(), i), i >= first && i < first + count)
          << "bit " << i << " first " << first << " count " << count;
    }
  }
}

}  // namespace
}  // namespace partib::part
