// Timer-based aggregation semantics (§IV-D, Fig 5): the first arrival of
// a transport group arms a delta deadline; on expiry the maximal
// contiguous arrived runs are flushed; later arrivals send immediately;
// if the group completes early the timer is disarmed and one WR covers
// the whole group.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

// One transport group of 4 partitions (static TP=1 over 4 user
// partitions) with an explicit delta, so arrival timing is ours to script.
struct TimerFixture : ChannelFixture {
  explicit TimerFixture(Duration delta, std::size_t partitions = 4)
      : ChannelFixture(partitions * KiB, partitions,
                       make_options(delta, partitions)) {
    engine.run();  // settle handshake
    fill_pattern(sbuf, 1);
    PARTIB_ASSERT(partib::ok(send->start()));
    PARTIB_ASSERT(partib::ok(recv->start()));
    engine.run();  // deliver the round credit
  }

  static part::Options make_options(Duration delta, std::size_t partitions) {
    part::Options o;
    // Timer plan with a single transport group covering all partitions.
    auto agg = std::make_shared<agg::TimerPLogGPAggregator>(
        model::LogGPParams::niagara_mpi_measured(), delta);
    o.aggregator = std::move(agg);
    o.transport_partitions_override = 1;
    (void)partitions;
    return o;
  }

  void pready_at(Duration when, std::size_t i) {
    engine.schedule_at(when, [this, i] {
      PARTIB_ASSERT(partib::ok(send->pready(i)));
    });
  }
};

TEST(TimerAgg, AllArriveBeforeDeadlineMeansOneWr) {
  TimerFixture fx(usec(100));
  const Time t0 = fx.engine.now();
  for (std::size_t i = 0; i < 4; ++i) {
    fx.pready_at(t0 + usec(5) * static_cast<Duration>(i + 1), i);
  }
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), 1u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(TimerAgg, Fig5ScenarioFlushesRunsThenLateArrival) {
  // delta = delta_b from the paper's Fig 5: p0, p1, p3 arrive before the
  // deadline, p2 after.  Expect WRs {0,1}, {3} at the deadline and {2}
  // on arrival: three WRs total.
  TimerFixture fx(usec(50));
  const Time t0 = fx.engine.now();
  fx.pready_at(t0 + usec(1), 0);
  fx.pready_at(t0 + usec(10), 1);
  fx.pready_at(t0 + usec(20), 3);
  fx.pready_at(t0 + usec(500), 2);  // laggard, past deadline (t0+1+50)
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), 3u);
  EXPECT_EQ(fx.recv->messages_received_total(), 3u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(TimerAgg, DeadlineFlushHappensBeforeLaggard) {
  // Early partitions must land at the receiver while the laggard is
  // still "computing" — the whole point of early-bird transmission.
  TimerFixture fx(usec(50));
  const Time t0 = fx.engine.now();
  fx.pready_at(t0 + usec(1), 0);
  fx.pready_at(t0 + usec(2), 1);
  fx.pready_at(t0 + usec(3), 2);
  fx.pready_at(t0 + msec(5), 3);  // far laggard
  fx.engine.run_until(t0 + msec(1));
  // By 1 ms the deadline (t0 + 51 us) has flushed {0,1,2}.
  EXPECT_TRUE(fx.recv->parrived(0));
  EXPECT_TRUE(fx.recv->parrived(1));
  EXPECT_TRUE(fx.recv->parrived(2));
  EXPECT_FALSE(fx.recv->parrived(3));
  fx.engine.run();
  EXPECT_TRUE(fx.recv->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), 2u);  // {0,1,2} then {3}
}

TEST(TimerAgg, NonContiguousArrivalsFlushAsSeparateRuns) {
  // p0 and p2 arrive before the deadline (non-adjacent): two WRs at the
  // deadline, then {1} and {3} individually: four total.
  TimerFixture fx(usec(50));
  const Time t0 = fx.engine.now();
  fx.pready_at(t0 + usec(1), 0);
  fx.pready_at(t0 + usec(2), 2);
  fx.pready_at(t0 + usec(500), 1);
  fx.pready_at(t0 + usec(600), 3);
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), 4u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(TimerAgg, LastArrivalJustBeforeDeadlineCancelsTimer) {
  TimerFixture fx(usec(50));
  const Time t0 = fx.engine.now();
  for (std::size_t i = 0; i < 4; ++i) fx.pready_at(t0 + usec(49), i);
  fx.engine.run();
  EXPECT_EQ(fx.send->wrs_posted_total(), 1u);
  EXPECT_TRUE(fx.send->test());
}

TEST(TimerAgg, ZeroDeltaDegeneratesTowardPerArrivalSends) {
  // With delta = 0 the deadline fires immediately after the first
  // arrival; each later arrival ships by itself (worst case: one WR per
  // partition).
  TimerFixture fx(0);
  const Time t0 = fx.engine.now();
  for (std::size_t i = 0; i < 4; ++i) {
    fx.pready_at(t0 + usec(10) * static_cast<Duration>(i + 1), i);
  }
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), 4u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(TimerAgg, ReverseOrderArrivalAfterDeadline) {
  // Reverse arrival order with only the highest index early.
  TimerFixture fx(usec(20));
  const Time t0 = fx.engine.now();
  fx.pready_at(t0 + usec(1), 3);
  fx.pready_at(t0 + usec(100), 2);
  fx.pready_at(t0 + usec(200), 1);
  fx.pready_at(t0 + usec(300), 0);
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  // {3} at deadline, then {2}, {1}, {0} individually.
  EXPECT_EQ(fx.send->wrs_posted_total(), 4u);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(TimerAgg, AdjacentLateArrivalsMergeWhenSimultaneous) {
  // p0 early; p1 and p2 marked ready at the same instant after the
  // deadline, p1 first: p1's flush ships only {1} (p2 not yet ready),
  // p2 then ships {2}; finally p3.
  TimerFixture fx(usec(10));
  const Time t0 = fx.engine.now();
  fx.pready_at(t0 + usec(1), 0);
  fx.pready_at(t0 + usec(100), 1);
  fx.pready_at(t0 + usec(100), 2);
  fx.pready_at(t0 + usec(200), 3);
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), 4u);
}

TEST(TimerAgg, SecondRoundTimerStateResets) {
  TimerFixture fx(usec(50));
  const Time t0 = fx.engine.now();
  fx.pready_at(t0 + usec(1), 0);
  fx.pready_at(t0 + usec(2), 1);
  fx.pready_at(t0 + usec(200), 2);
  fx.pready_at(t0 + usec(300), 3);
  fx.engine.run();
  ASSERT_TRUE(fx.send->test());
  const auto first_round_wrs = fx.send->wrs_posted_total();
  EXPECT_EQ(first_round_wrs, 3u);  // {0,1}, {2}, {3}

  // Round 2: everyone arrives inside delta -> exactly one more WR.
  fill_pattern(fx.sbuf, 2);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  const Time t1 = fx.engine.now();
  for (std::size_t i = 0; i < 4; ++i) fx.pready_at(t1 + usec(5), i);
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), first_round_wrs + 1);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(TimerAgg, MultipleGroupsArmIndependentTimers) {
  // 8 partitions in 2 transport groups of 4.  Group 0 completes early
  // (one WR); group 1 is flushed by its own deadline.
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> sbuf(8 * KiB), rbuf(8 * KiB);
  part::Options opts;
  opts.aggregator = std::make_shared<agg::TimerPLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), usec(50));
  opts.transport_partitions_override = 2;
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), sbuf, 8, 1, 0, 0, opts,
                                  &send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), rbuf, 8, 0, 0, 0, opts,
                                  &recv)));
  engine.run();
  fill_pattern(sbuf, 1);
  ASSERT_TRUE(ok(send->start()));
  ASSERT_TRUE(ok(recv->start()));
  engine.run();
  const Time t0 = engine.now();
  // Group 0 (partitions 0-3): all within delta.
  for (std::size_t i = 0; i < 4; ++i) {
    engine.schedule_at(t0 + usec(5), [&send, i] {
      ASSERT_TRUE(ok(send->pready(i)));
    });
  }
  // Group 1 (partitions 4-7): 4,5 early; 6,7 late.
  for (std::size_t i : {4u, 5u}) {
    engine.schedule_at(t0 + usec(5), [&send, i] {
      ASSERT_TRUE(ok(send->pready(i)));
    });
  }
  for (std::size_t i : {6u, 7u}) {
    engine.schedule_at(t0 + usec(500) + static_cast<Duration>(i), [&send, i] {
      ASSERT_TRUE(ok(send->pready(i)));
    });
  }
  engine.run();
  EXPECT_TRUE(send->test());
  EXPECT_TRUE(recv->test());
  // Group 0: 1 WR.  Group 1: {4,5} at deadline, {6}, {7}: 3 WRs.
  EXPECT_EQ(send->wrs_posted_total(), 4u);
  EXPECT_TRUE(buffers_equal(sbuf, rbuf));
}

}  // namespace
}  // namespace partib::test
