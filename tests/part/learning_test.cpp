// Online arrival-learning aggregation at the channel level: the sender
// must learn a repeating arrival pattern, re-plan layout and delta at
// Start with hysteresis, stay byte-exact while the layout shifts under
// it, accept oracle seeding, and replay bit-identically from a fixed
// scenario (docs/ADAPTIVE.md).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "check/determinism.hpp"
#include "common/units.hpp"
#include "model/arrival_plan.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

// Drive one round with per-partition pready offsets `truth` (ns from the
// round's first pready).
void run_round_with_arrivals(ChannelFixture& fx, int round,
                             const std::vector<Duration>& truth) {
  fill_pattern(fx.sbuf, round);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  const Time t0 = fx.engine.now();
  for (std::size_t i = 0; i < truth.size(); ++i) {
    fx.engine.schedule_at(t0 + truth[i], [&fx, i] {
      ASSERT_TRUE(ok(fx.send->pready(i)));
    });
  }
  fx.engine.run();
  ASSERT_TRUE(fx.send->test());
  ASSERT_TRUE(fx.recv->test());
  ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

std::vector<Duration> bursty_truth(std::size_t n, Duration spread) {
  std::vector<Duration> a(n);
  const std::size_t head = n - n / 8;
  for (std::size_t i = 0; i < head; ++i) {
    a[i] = (usec(120) * static_cast<Duration>(i)) /
           static_cast<Duration>(head - 1);
  }
  for (std::size_t i = head; i < n; ++i) {
    a[i] = spread + (usec(600) * static_cast<Duration>(i - head)) /
                        static_cast<Duration>(n - head - 1);
  }
  return a;
}

std::vector<Duration> ramp_truth(std::size_t n, Duration spread) {
  std::vector<Duration> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = (spread * static_cast<Duration>(i)) /
           static_cast<Duration>(n - 1);
  }
  return a;
}

TEST(Learning, WarmProfileReplansToTheArrivalPattern) {
  ChannelFixture fx(64 * MiB, 64, learning_options());
  fx.engine.run();
  ASSERT_TRUE(fx.send->plan().learning);
  EXPECT_EQ(fx.send->profile_epochs(), 0u);
  EXPECT_EQ(fx.send->replans_adopted(), 0u);

  const auto truth = bursty_truth(64, msec(6));
  for (int round = 1; round <= 4; ++round) {
    run_round_with_arrivals(fx, round, truth);
  }
  EXPECT_GE(fx.send->profile_epochs(), 3u);
  EXPECT_GE(fx.send->replans_adopted(), 1u);

  // The adopted layout must isolate the straggler cluster: no group may
  // contain both a head partition (<= 55) and a tail partition (>= 56).
  const auto firsts = fx.send->group_firsts();
  const auto counts = fx.send->group_counts();
  ASSERT_EQ(firsts.size(), counts.size());
  bool boundary_at_56 = false;
  for (std::size_t g = 0; g < firsts.size(); ++g) {
    EXPECT_FALSE(firsts[g] < 56 && firsts[g] + counts[g] > 56);
    if (firsts[g] == 56) boundary_at_56 = true;
  }
  EXPECT_TRUE(boundary_at_56);
}

TEST(Learning, StationaryWorkloadDoesNotFlap) {
  ChannelFixture fx(64 * MiB, 64, learning_options());
  fx.engine.run();
  const auto truth = bursty_truth(64, msec(6));
  for (int round = 1; round <= 6; ++round) {
    run_round_with_arrivals(fx, round, truth);
  }
  // The profile has converged (identical epochs keep the EWMA fixed), so
  // the candidate equals the incumbent and hysteresis must hold the plan
  // perfectly still from here on.
  const std::uint64_t adopted = fx.send->replans_adopted();
  EXPECT_GE(adopted, 1u);
  const std::vector<std::size_t> firsts(fx.send->group_firsts().begin(),
                                        fx.send->group_firsts().end());
  const Duration delta = fx.send->plan().timer_delta;
  for (int round = 7; round <= 14; ++round) {
    run_round_with_arrivals(fx, round, truth);
  }
  EXPECT_EQ(fx.send->replans_adopted(), adopted);
  EXPECT_EQ(fx.send->plan().timer_delta, delta);
  ASSERT_EQ(fx.send->group_firsts().size(), firsts.size());
  for (std::size_t g = 0; g < firsts.size(); ++g) {
    EXPECT_EQ(fx.send->group_firsts()[g], firsts[g]);
  }
}

TEST(Learning, ByteExactWhileTheLayoutShiftsUnderneath) {
  ChannelFixture fx(16 * MiB, 32, learning_options());
  fx.engine.run();
  // Regime churn: every few rounds the pattern changes, so replans keep
  // re-shaping the layout mid-stream.  Delivery must stay exact and
  // every posted WR must be received.
  int round = 0;
  for (const auto& truth :
       {bursty_truth(32, msec(6)), bursty_truth(32, msec(6)),
        ramp_truth(32, msec(4)), ramp_truth(32, msec(4)),
        ramp_truth(32, usec(5)), ramp_truth(32, usec(5)),
        bursty_truth(32, msec(2)), bursty_truth(32, msec(2))}) {
    run_round_with_arrivals(fx, ++round, truth);
  }
  EXPECT_EQ(fx.recv->messages_received_total(), fx.send->wrs_posted_total());
  EXPECT_GE(fx.send->replans_adopted(), 1u);
}

TEST(Learning, GroupBudgetAndCoverHoldAcrossReplans) {
  part::Options opts = learning_options();
  const auto& learn =
      static_cast<const agg::ArrivalLearningAggregator&>(*opts.aggregator)
          .config();
  ChannelFixture fx(16 * MiB, 64, opts);
  fx.engine.run();
  int round = 0;
  for (const auto& truth :
       {bursty_truth(64, msec(6)), bursty_truth(64, msec(6)),
        ramp_truth(64, msec(8)), ramp_truth(64, msec(8)),
        bursty_truth(64, msec(1)), bursty_truth(64, msec(1))}) {
    run_round_with_arrivals(fx, ++round, truth);
    // Every layout the replan installs is a contiguous cover of the user
    // partitions within the transport budget — the fixed-capacity
    // buffers the allocation-free replan writes into are never exceeded.
    const auto firsts = fx.send->group_firsts();
    const auto counts = fx.send->group_counts();
    ASSERT_LE(firsts.size(), learn.max_groups);
    std::size_t next = 0;
    for (std::size_t g = 0; g < firsts.size(); ++g) {
      ASSERT_EQ(firsts[g], next);
      next += counts[g];
    }
    ASSERT_EQ(next, 64u);
  }
}

TEST(Learning, OracleSeedReplansOnTheNextStart) {
  ChannelFixture fx(64 * MiB, 64, learning_options());
  fx.engine.run();
  const auto truth = bursty_truth(64, msec(6));
  // Seed the ground truth before the first data round: the very next
  // Start must already adopt the pattern-shaped plan, no warm-up epochs.
  ASSERT_TRUE(ok(fx.send->seed_profile(truth)));
  EXPECT_GE(fx.send->profile_epochs(), 1u);
  run_round_with_arrivals(fx, 1, truth);
  EXPECT_GE(fx.send->replans_adopted(), 1u);
  bool boundary_at_56 = false;
  for (std::size_t f : fx.send->group_firsts()) {
    if (f == 56) boundary_at_56 = true;
  }
  EXPECT_TRUE(boundary_at_56);
}

TEST(Learning, SeedProfileRejectsBadCalls) {
  ChannelFixture learning_fx(1 * MiB, 16, learning_options());
  learning_fx.engine.run();
  const std::vector<Duration> wrong_size(8, usec(1));
  EXPECT_EQ(learning_fx.send->seed_profile(wrong_size),
            Status::kInvalidArgument);

  ChannelFixture static_fx(1 * MiB, 16, ploggp_options());
  static_fx.engine.run();
  const std::vector<Duration> right_size(16, usec(1));
  EXPECT_EQ(static_fx.send->seed_profile(right_size),
            Status::kInvalidState);
}

TEST(Learning, ScenarioReplaysBitIdentically) {
  const auto run_scenario = [] {
    check::DeterminismAuditor auditor;
    ChannelFixture fx(16 * MiB, 64, learning_options());
    auditor.attach(fx.engine);
    fx.engine.run();
    int round = 0;
    for (const auto& truth :
         {bursty_truth(64, msec(6)), bursty_truth(64, msec(6)),
          ramp_truth(64, msec(3)), bursty_truth(64, msec(6))}) {
      run_round_with_arrivals(fx, ++round, truth);
    }
    return std::pair{auditor.fingerprint(), auditor.events_observed()};
  };
  const auto a = run_scenario();
  const auto b = run_scenario();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);
}

}  // namespace
}  // namespace partib::test
