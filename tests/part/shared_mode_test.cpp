// Connection-scale shared-resources mode (part::Options::shared_resources):
// channels draw QPs from the rank's on-demand connection manager, drain
// completions through the rank's single shared CQ, and stage receives in
// the rank's SRQ.  These tests pin the mode's semantics — lazy QP
// establishment, data integrity versus dedicated mode, per-rank resource
// sharing across an incast, and lease/release behaviour — plus the
// footprint win the design exists for.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/units.hpp"
#include "mpi/conn.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

part::Options shared(part::Options o) {
  o.shared_resources = true;
  return o;
}

TEST(SharedMode, SingleChannelDeliversDataAcrossRounds) {
  ChannelFixture fx(64 * KiB, 16, shared(ploggp_options()));
  for (int round = 1; round <= 4; ++round) {
    fx.run_round(round);
    ASSERT_TRUE(fx.send->test()) << "round " << round;
    ASSERT_TRUE(fx.recv->test()) << "round " << round;
    ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "round " << round;
  }
  // One establishment serves every round.
  EXPECT_EQ(fx.world->rank(0).connections().total_establishments(), 1u);
}

TEST(SharedMode, QpChainIsEstablishedLazilyOnFirstSend) {
  ChannelFixture fx(16 * KiB, 4, shared(static_options(/*tp=*/4, /*qps=*/2)));
  fx.engine.run();  // handshake completes...
  EXPECT_TRUE(fx.send->handshake_done());
  // ...but no QPs exist yet on the sender: establishment waits for the
  // first send toward the peer (Ibdxnet's on-demand connection rule).
  EXPECT_EQ(fx.world->rank(0).context().footprint().qps, 0);
  EXPECT_EQ(fx.send->qp_count(), 0);

  fx.run_round(1);
  EXPECT_EQ(fx.world->rank(0).context().footprint().qps, 2);
  EXPECT_EQ(fx.send->qp_count(), 2);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(SharedMode, MatchesDedicatedModeResults) {
  const std::size_t bytes = 128 * KiB;
  const std::size_t parts = 32;
  std::uint64_t ded_wrs = 0;
  std::uint64_t ded_msgs = 0;
  {
    ChannelFixture dedicated(bytes, parts, ploggp_options());
    for (int round = 1; round <= 3; ++round) {
      dedicated.run_round(round);
      ASSERT_TRUE(buffers_equal(dedicated.rbuf, dedicated.sbuf));
    }
    ded_wrs = dedicated.send->wrs_posted_total();
    ded_msgs = dedicated.recv->messages_received_total();
  }
  // The checker shadow is thread-local and keyed by rkey/qp_num, so the
  // two worlds must not coexist: run sequentially and reset between.
  check::reset();
  ChannelFixture shared_fx(bytes, parts, shared(ploggp_options()));
  for (int round = 1; round <= 3; ++round) {
    shared_fx.run_round(round);
    ASSERT_TRUE(buffers_equal(shared_fx.rbuf, shared_fx.sbuf));
  }
  // Same aggregation plan, same wire traffic.
  EXPECT_EQ(shared_fx.send->wrs_posted_total(), ded_wrs);
  EXPECT_EQ(shared_fx.recv->messages_received_total(), ded_msgs);
}

/// N senders fanning into rank 0, one channel per sender.
struct IncastFixture {
  sim::Engine engine;
  std::unique_ptr<mpi::World> world;
  std::vector<std::vector<std::byte>> sbufs;
  std::vector<std::vector<std::byte>> rbufs;
  std::vector<std::unique_ptr<part::PsendRequest>> sends;
  std::vector<std::unique_ptr<part::PrecvRequest>> recvs;

  IncastFixture(int peers, std::size_t bytes, std::size_t parts,
                const part::Options& opts) {
    mpi::WorldOptions wopts;
    wopts.ranks = peers + 1;
    world = std::make_unique<mpi::World>(engine, wopts);
    sbufs.resize(static_cast<std::size_t>(peers));
    rbufs.resize(static_cast<std::size_t>(peers));
    for (int p = 0; p < peers; ++p) {
      const auto i = static_cast<std::size_t>(p);
      sbufs[i].resize(bytes);
      rbufs[i].resize(bytes);
      fill_pattern(sbufs[i], p + 1);
      std::unique_ptr<part::PsendRequest> s;
      std::unique_ptr<part::PrecvRequest> r;
      PARTIB_ASSERT(partib::ok(part::psend_init(world->rank(p + 1), sbufs[i],
                                                parts, /*dst=*/0, /*tag=*/p,
                                                /*comm=*/0, opts, &s)));
      PARTIB_ASSERT(partib::ok(part::precv_init(world->rank(0), rbufs[i],
                                                parts, /*src=*/p + 1,
                                                /*tag=*/p, /*comm=*/0, opts,
                                                &r)));
      sends.push_back(std::move(s));
      recvs.push_back(std::move(r));
    }
  }

  void run_round() {
    for (auto& s : sends) PARTIB_ASSERT(partib::ok(s->start()));
    for (auto& r : recvs) PARTIB_ASSERT(partib::ok(r->start()));
    for (auto& s : sends) {
      for (std::size_t i = 0; i < s->user_partitions(); ++i) {
        PARTIB_ASSERT(partib::ok(s->pready(i)));
      }
    }
    engine.run();
  }
};

TEST(SharedMode, IncastSharesOneCqAndOneSrqPerRank) {
  constexpr int kPeers = 8;
  IncastFixture fx(kPeers, 16 * KiB, 8,
                   shared(static_options(/*tp=*/4, /*qps=*/2)));
  fx.run_round();
  for (int p = 0; p < kPeers; ++p) {
    const auto i = static_cast<std::size_t>(p);
    ASSERT_TRUE(fx.recvs[i]->test());
    ASSERT_TRUE(buffers_equal(fx.sbufs[i], fx.rbufs[i])) << "peer " << p;
  }
  // The hot rank runs 8 channels over exactly one CQ and one SRQ.
  const verbs::ResourceFootprint fp = fx.world->rank(0).context().footprint();
  EXPECT_EQ(fp.cqs, 1);
  EXPECT_EQ(fp.srqs, 1);
  EXPECT_EQ(fx.world->rank(0).connections().established_connections(), kPeers);
}

TEST(SharedMode, FootprintPerPeerAtLeastFourTimesSmallerThanDedicated) {
  constexpr int kPeers = 8;
  std::size_t ded = 0;
  {
    IncastFixture dedicated(kPeers, 16 * KiB, 8, static_options(4, 2));
    dedicated.run_round();
    ded = dedicated.world->rank(0).context().footprint().provisioned_bytes;
  }
  check::reset();  // sequential worlds: do not mix checker shadows

  IncastFixture shared_fx(kPeers, 16 * KiB, 8, shared(static_options(4, 2)));
  shared_fx.run_round();

  // Hot-rank receive-side provisioning, per peer.  Dedicated mode pays a
  // full-depth CQ per channel; shared mode amortises one CQ + one SRQ
  // across every peer (the acceptance bar for the connection-scale
  // design: >= 4x less provisioned memory per peer).
  const std::size_t shr =
      shared_fx.world->rank(0).context().footprint().provisioned_bytes;
  EXPECT_GE(ded / kPeers, 4 * (shr / kPeers))
      << "dedicated=" << ded << " shared=" << shr;
}

TEST(SharedMode, ChannelDestructionReleasesTheLease) {
  IncastFixture fx(2, 16 * KiB, 8, shared(static_options(4, 1)));
  fx.run_round();
  mpi::ConnectionManager& mgr = fx.world->rank(0).connections();
  EXPECT_EQ(mgr.established_connections(), 2);
  for (int id = 0; id < 2; ++id) {
    EXPECT_TRUE(mgr.connection(id).leased);
  }
  fx.sends.clear();
  fx.recvs.clear();
  // Connections stay warm (established) but recyclable.
  EXPECT_EQ(mgr.established_connections(), 2);
  for (int id = 0; id < 2; ++id) {
    EXPECT_FALSE(mgr.connection(id).leased);
  }
}

}  // namespace
}  // namespace partib::test
