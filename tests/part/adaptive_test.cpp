// Online-adaptive PLogGP aggregation: the transport-partition count must
// follow the measured arrival spread across rounds.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "model/ploggp.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

part::Options adaptive_options(Duration initial_guess = msec(4)) {
  return options_with(std::make_shared<agg::AdaptivePLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), initial_guess,
      /*ewma_alpha=*/1.0));  // alpha 1: track the last round exactly
}

// Drive one round whose Pready spread is exactly `spread` (first thread
// at t0, last at t0 + spread, the rest in between).
void run_round_with_spread(ChannelFixture& fx, int round, Duration spread) {
  fill_pattern(fx.sbuf, round);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  const Time t0 = fx.engine.now();
  const std::size_t n = fx.send->user_partitions();
  for (std::size_t i = 0; i < n; ++i) {
    const Time at =
        t0 + (spread * static_cast<Duration>(i)) /
                 static_cast<Duration>(n - 1);
    fx.engine.schedule_at(at, [&fx, i] {
      ASSERT_TRUE(ok(fx.send->pready(i)));
    });
  }
  fx.engine.run();
  ASSERT_TRUE(fx.send->test());
  ASSERT_TRUE(fx.recv->test());
  ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(Adaptive, MeasuresRoundSpread) {
  ChannelFixture fx(64 * MiB, 32, adaptive_options());
  fx.engine.run();
  EXPECT_EQ(fx.send->adapted_delay(), -1);  // nothing measured yet
  run_round_with_spread(fx, 1, msec(2));
  run_round_with_spread(fx, 2, msec(2));
  // After round 2's Start, round 1's spread has been folded in.
  EXPECT_NEAR(static_cast<double>(fx.send->adapted_delay()),
              static_cast<double>(msec(2)),
              static_cast<double>(usec(10)));
}

TEST(Adaptive, LargeSpreadRaisesPartitionCount) {
  // 64 MiB: with a large measured delay the drain-aware optimizer can
  // afford many partitions; with a tiny delay it cannot.
  ChannelFixture fx(64 * MiB, 32, adaptive_options(/*initial=*/usec(1)));
  fx.engine.run();
  const std::size_t tp_initial = fx.send->transport_partitions();

  // Several imbalanced rounds: spread ~8 ms.
  run_round_with_spread(fx, 1, msec(8));
  run_round_with_spread(fx, 2, msec(8));
  const std::size_t tp_imbalanced = fx.send->transport_partitions();
  EXPECT_GT(tp_imbalanced, tp_initial);

  // Matches the drain-aware optimizer fed the measured delay.
  model::OptimizerConfig cfg;
  cfg.delay = fx.send->adapted_delay();
  EXPECT_EQ(tp_imbalanced,
            model::optimal_transport_partitions_with_drain(
                model::LogGPParams::niagara_mpi_measured(), 64 * MiB, 32,
                cfg));
}

TEST(Adaptive, BalancedRoundsReduceSplitting) {
  ChannelFixture fx(64 * MiB, 32, adaptive_options(msec(8)));
  fx.engine.run();
  const std::size_t tp_before = fx.send->transport_partitions();
  run_round_with_spread(fx, 1, usec(5));  // nearly balanced
  run_round_with_spread(fx, 2, usec(5));
  EXPECT_LT(fx.send->transport_partitions(), tp_before);
}

TEST(Adaptive, AdaptedPlanStillDeliversByteExact) {
  ChannelFixture fx(8 * MiB, 16, adaptive_options());
  fx.engine.run();
  // Alternate wildly different spreads; correctness must be unaffected.
  const Duration spreads[] = {usec(3), msec(6), usec(50), msec(1)};
  int round = 0;
  for (Duration s : spreads) {
    run_round_with_spread(fx, ++round, s);
  }
  EXPECT_EQ(fx.recv->messages_received_total(),
            fx.send->wrs_posted_total());
}

TEST(Adaptive, SingleQpPlanRespectsOutstandingLimitViaBacklog) {
  // Even if the adapted count exceeds the 16-WR QP limit, the software
  // backlog must absorb it.
  ChannelFixture fx(256 * MiB, 32, adaptive_options(msec(50)));
  fx.engine.run();
  run_round_with_spread(fx, 1, msec(40));
  run_round_with_spread(fx, 2, msec(40));
  EXPECT_GT(fx.send->transport_partitions(), 16u);
  run_round_with_spread(fx, 3, msec(40));  // > 16 WRs on one QP
  EXPECT_TRUE(fx.send->test());
}

TEST(ModelDrain, DelayMovesTheDrainAwareOptimum) {
  const auto p = model::LogGPParams::niagara_mpi_measured();
  model::OptimizerConfig small_delay;
  small_delay.delay = usec(10);
  model::OptimizerConfig big_delay;
  big_delay.delay = msec(20);
  const std::size_t tp_small = model::optimal_transport_partitions_with_drain(
      p, 256 * MiB, 32, small_delay);
  const std::size_t tp_big = model::optimal_transport_partitions_with_drain(
      p, 256 * MiB, 32, big_delay);
  EXPECT_LT(tp_small, tp_big);
}

}  // namespace
}  // namespace partib::test
