// The 32-bit immediate encoding of partition ranges (§IV-A).
#include <gtest/gtest.h>

#include "part/imm.hpp"

namespace partib::part {
namespace {

TEST(Imm, RoundTripBasics) {
  const auto r = decode_imm(encode_imm(3, 7));
  EXPECT_EQ(r.first, 3);
  EXPECT_EQ(r.count, 7);
}

TEST(Imm, LayoutMatchesPaper) {
  // start partition in the high 16 bits, count in the low 16.
  EXPECT_EQ(encode_imm(1, 2), 0x00010002u);
  EXPECT_EQ(encode_imm(0xABCD, 0x1234), 0xABCD1234u);
}

TEST(Imm, ZeroValues) {
  const auto r = decode_imm(encode_imm(0, 0));
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.count, 0);
}

TEST(Imm, MaxValues) {
  const auto r = decode_imm(encode_imm(0xFFFF, 0xFFFF));
  EXPECT_EQ(r.first, 0xFFFF);
  EXPECT_EQ(r.count, 0xFFFF);
}

TEST(Imm, ExhaustiveRoundTripSample) {
  for (std::uint32_t first = 0; first <= 0xFFFF; first += 257) {
    for (std::uint32_t count = 1; count <= 0xFFFF; count += 509) {
      const auto r = decode_imm(encode_imm(first, count));
      ASSERT_EQ(r.first, first);
      ASSERT_EQ(r.count, count);
    }
  }
}

TEST(ImmDeath, OverflowingFieldAborts) {
  EXPECT_DEATH((void)encode_imm(0x10000, 1), "16-bit immediate");
  EXPECT_DEATH((void)encode_imm(1, 0x10000), "16-bit immediate");
}

}  // namespace
}  // namespace partib::part
