// End-to-end recovery on the partitioned channel: transient transport
// faults are absorbed by the staged-WR retransmit path (exact bytes still
// arrive), QP errors recycle through RESET -> RTS, and a channel that
// exhausts its failure budget surfaces a structured error on both sides
// instead of hanging.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/determinism.hpp"
#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::part {
namespace {

using test::ChannelFixture;
using test::buffers_equal;
using test::fill_pattern;

mpi::WorldOptions faulty_world(fabric::FaultPlanConfig faults) {
  mpi::WorldOptions w;
  w.faults = faults;
  return w;
}

fabric::FaultPlanConfig transient_faults(std::uint64_t seed) {
  fabric::FaultPlanConfig f;
  f.seed = seed;
  f.drop_rate = 0.05;
  f.delay_rate = 0.10;
  f.rnr_rate = 0.05;
  f.retry_exc_rate = 0.05;
  return f;
}

struct Recovery : ::testing::Test {
  void SetUp() override { check::reset(); }
  void TearDown() override { check::reset(); }
};

TEST_F(Recovery, TransientFaultsStillDeliverExactBytes) {
  // Static 16KiB aggregation => 16 transport messages per round, enough
  // draws that the 25% combined fault rate is guaranteed to bite.
  ChannelFixture fx(256 * KiB, 64, test::static_options(16 * KiB, 4),
                    faulty_world(transient_faults(17)));
  for (int round = 0; round < 4; ++round) {
    fx.run_round(round);
    EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "round " << round;
    EXPECT_FALSE(fx.send->failed());
    EXPECT_FALSE(fx.recv->failed());
  }
  // The plan actually bit: faults were injected and every one was either
  // retransmitted below verbs or retried from the staged-WR slab.
  const fabric::FabricStats& stats = fx.world->fab().stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_EQ(fx.send->status(), Status::kOk);
  EXPECT_EQ(fx.recv->status(), Status::kOk);
}

TEST_F(Recovery, QpFlushFaultsRecycleAndComplete) {
  // Flush faults wedge a QP chain mid-round; the sender must recycle the
  // errored QPs (RESET -> INIT -> RTR -> RTS) and repost from the slab.
  fabric::FaultPlanConfig f;
  f.seed = 23;
  f.qp_flush_rate = 0.10;
  ChannelFixture fx(128 * KiB, 32, test::static_options(16 * KiB, 2),
                    faulty_world(f));
  for (int round = 0; round < 3; ++round) {
    fx.run_round(round);
    EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "round " << round;
    EXPECT_FALSE(fx.send->failed());
  }
  const fabric::FabricStats& stats = fx.world->fab().stats();
  EXPECT_GT(stats.failed_ops, 0u);  // flushes happened and were survived
}

TEST_F(Recovery, BudgetExhaustionSurfacesStructuredError) {
  check::ScopedPolicy policy(check::Policy::kCount);
  fabric::FaultPlanConfig f;
  f.seed = 5;
  f.retry_exc_rate = 1.0;  // every transaction fails; retries cannot win
  part::Options opts = test::ploggp_options();
  opts.max_send_retries = 2;
  opts.retry_backoff = usec(1);
  ChannelFixture fx(64 * KiB, 16, opts, faulty_world(f));

  fill_pattern(fx.sbuf, 0);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  for (std::size_t i = 0; i < fx.send->user_partitions(); ++i) {
    ASSERT_TRUE(ok(fx.send->pready(i)));
  }
  fx.engine.run();

  // The channel failed closed, on both sides, with a structured status —
  // and the simulation reached quiescence (no hang).
  EXPECT_TRUE(fx.send->failed());
  EXPECT_TRUE(fx.recv->failed());
  EXPECT_EQ(fx.send->status(), Status::kRemoteError);
  EXPECT_EQ(fx.recv->status(), Status::kRemoteError);
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  if (check::hooks_compiled_in()) {
    EXPECT_GE(check::count_rule("part.retry_exhausted"), 1u);
  }

  // Later lifecycle calls report the failure instead of restarting.
  EXPECT_EQ(fx.send->start(), Status::kRemoteError);
  EXPECT_EQ(fx.send->pready(0), Status::kRemoteError);
  EXPECT_EQ(fx.recv->start(), Status::kRemoteError);
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
}

TEST_F(Recovery, FaultedRunsAreDeterministic) {
  // Same geometry + same fault seed => byte-identical event stream, even
  // through retries, recycles and retransmissions.
  std::uint64_t fp[2];
  for (int i = 0; i < 2; ++i) {
    check::DeterminismAuditor auditor;
    ChannelFixture fx(128 * KiB, 32, test::ploggp_options(),
                      faulty_world(transient_faults(99)));
    auditor.attach(fx.engine);
    for (int round = 0; round < 2; ++round) fx.run_round(round);
    EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
    fp[i] = auditor.fingerprint();
    EXPECT_GT(auditor.events_observed(), 0u);
  }
  EXPECT_EQ(fp[0], fp[1]);
  EXPECT_TRUE(
      check::DeterminismAuditor::expect_identical(fp[0], fp[1], "recovery"));
}

}  // namespace
}  // namespace partib::part
