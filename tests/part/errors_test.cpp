// API misuse: the error paths psend_init / precv_init / start / pready /
// parrived must reject, mirroring MPI's erroneous-program rules (no
// wildcards, no double Pready, power-of-two geometry, ...).
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/backend_fixture.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

// Validation happens before anything touches the wire, so rejecting on
// one transport and not another would be a conformance bug — the whole
// file (minus the DES-only death test) runs over every backend.
using InitErrors = test::BackendTest;
using UsageErrors = test::BackendTest;
using Overrides = test::BackendTest;
using Backpressure = test::BackendTest;

struct ErrFixture {
  std::unique_ptr<backend::Backend> backend =
      backend::make_backend(current_backend());
  mpi::World world{*backend, {}};
  std::vector<std::byte> buf = std::vector<std::byte>(16 * KiB);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  part::Options opts = ploggp_options();
};

TEST_P(InitErrors, NonPowerOfTwoPartitions) {
  ErrFixture fx;
  EXPECT_EQ(part::psend_init(fx.world.rank(0), fx.buf, 3, 1, 0, 0, fx.opts,
                             &fx.send),
            Status::kInvalidArgument);
  EXPECT_EQ(part::precv_init(fx.world.rank(1), fx.buf, 12, 0, 0, 0, fx.opts,
                             &fx.recv),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, ZeroPartitions) {
  ErrFixture fx;
  EXPECT_EQ(part::psend_init(fx.world.rank(0), fx.buf, 0, 1, 0, 0, fx.opts,
                             &fx.send),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, BufferNotDivisible) {
  ErrFixture fx;
  std::vector<std::byte> odd(1000);  // not divisible by 16
  EXPECT_EQ(part::psend_init(fx.world.rank(0), odd, 16, 1, 0, 0, fx.opts,
                             &fx.send),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, EmptyBuffer) {
  ErrFixture fx;
  std::vector<std::byte> empty;
  EXPECT_EQ(part::psend_init(fx.world.rank(0), empty, 4, 1, 0, 0, fx.opts,
                             &fx.send),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, WildcardLikeNegativeTagRejected) {
  ErrFixture fx;
  EXPECT_EQ(part::psend_init(fx.world.rank(0), fx.buf, 4, 1, -1, 0, fx.opts,
                             &fx.send),
            Status::kInvalidArgument);
  EXPECT_EQ(part::precv_init(fx.world.rank(1), fx.buf, 4, 0, -1, 0, fx.opts,
                             &fx.recv),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, WildcardLikeNegativeSourceRejected) {
  ErrFixture fx;
  EXPECT_EQ(part::precv_init(fx.world.rank(1), fx.buf, 4, -1, 0, 0, fx.opts,
                             &fx.recv),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, PeerOutOfRange) {
  ErrFixture fx;
  EXPECT_EQ(part::psend_init(fx.world.rank(0), fx.buf, 4, 9, 0, 0, fx.opts,
                             &fx.send),
            Status::kInvalidArgument);
}

TEST_P(InitErrors, SelfChannelUnsupported) {
  ErrFixture fx;
  EXPECT_EQ(part::psend_init(fx.world.rank(0), fx.buf, 4, 0, 0, 0, fx.opts,
                             &fx.send),
            Status::kUnsupported);
  EXPECT_EQ(part::precv_init(fx.world.rank(0), fx.buf, 4, 0, 0, 0, fx.opts,
                             &fx.recv),
            Status::kUnsupported);
}

TEST_P(InitErrors, MissingAggregator) {
  ErrFixture fx;
  part::Options bad;  // aggregator left null
  EXPECT_EQ(part::psend_init(fx.world.rank(0), fx.buf, 4, 1, 0, 0, bad,
                             &fx.send),
            Status::kInvalidArgument);
}

TEST_P(UsageErrors, PreadyBeforeStart) {
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  fx.drive();
  EXPECT_EQ(fx.send->pready(0), Status::kInvalidState);
}

TEST_P(UsageErrors, PreadyOutOfRange) {
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  EXPECT_EQ(fx.send->pready(4), Status::kInvalidArgument);
  EXPECT_EQ(fx.send->pready(1000), Status::kInvalidArgument);
}

TEST_P(UsageErrors, DoublePreadyIsErroneous) {
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  ASSERT_TRUE(ok(fx.send->pready(1)));
  EXPECT_EQ(fx.send->pready(1), Status::kInvalidArgument);
}

TEST_P(UsageErrors, PreadyRangeBadBounds) {
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  EXPECT_EQ(fx.send->pready_range(2, 1), Status::kInvalidArgument);
  EXPECT_EQ(fx.send->pready_range(0, 4), Status::kInvalidArgument);
}

TEST_P(UsageErrors, PreadyRangePartialSuccessKeepsEarlierPartitions) {
  // pready_range stops at the first failure but does NOT roll back the
  // partitions it already marked (the header's partial-success contract:
  // Pready is not undoable, groups may already be on the wire).
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  ASSERT_TRUE(ok(fx.send->pready(1)));  // pre-mark the failure point

  // Range marks 0, then fails on the double-Pready of 1; 2 and 3 untouched.
  EXPECT_EQ(fx.send->pready_range(0, 3), Status::kInvalidArgument);

  // Partition 0 stayed marked: marking it again is a double Pready.
  EXPECT_EQ(fx.send->pready(0), Status::kInvalidArgument);

  // The partitions after the failure point were never marked; the caller
  // resumes from there and the round completes normally.
  EXPECT_TRUE(ok(fx.send->pready_range(2, 3)));
  fx.drive();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
}

TEST_P(UsageErrors, StartWhileRoundInFlight) {
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  ASSERT_TRUE(ok(fx.send->pready(0)));  // round incomplete
  EXPECT_EQ(fx.send->start(), Status::kInvalidState);
  // Receiver likewise: nothing arrived yet.
  EXPECT_EQ(fx.recv->start(), Status::kInvalidState);
}

TEST_P(UsageErrors, InactiveRequestTestsComplete) {
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
}

TEST(GeometryDeath, GeometryMismatchAborts) {
  // Sender and receiver disagreeing on the *total buffer size* is a fatal
  // program error.  (Differing partition counts are legal per MPI-4.0 and
  // exercised in integration/uneven_test.cpp.)
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> sbuf(16 * KiB), rbuf(32 * KiB);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), sbuf, 4, 1, 0, 0,
                                  ploggp_options(), &send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), rbuf, 4, 0, 0, 0,
                                  ploggp_options(), &recv)));
  EXPECT_DEATH(engine.run(), "geometry mismatch");
}

TEST_P(InitErrors, PartitionCountBeyondImmediateFieldRejected) {
  // The (start, count) pair must fit two 16-bit immediate halves.
  ErrFixture fx;
  std::vector<std::byte> big(128 * KiB);
  EXPECT_EQ(part::psend_init(fx.world.rank(0), big, 1 << 17, 1, 0, 0,
                             fx.opts, &fx.send),
            Status::kInvalidArgument);
}

TEST_P(Overrides, TransportPartitionOverrideWins) {
  part::Options opts = ploggp_options();
  opts.transport_partitions_override = 16;
  ChannelFixture fx(64 * KiB, 16, opts);
  EXPECT_EQ(fx.send->transport_partitions(), 16u);
}

TEST_P(Overrides, QpCountOverrideWins) {
  part::Options opts = ploggp_options();
  opts.qp_count_override = 4;
  ChannelFixture fx(64 * KiB, 16, opts);
  EXPECT_EQ(fx.send->qp_count(), 4);
}

TEST_P(Overrides, OverrideAboveUserCountClamps) {
  part::Options opts = ploggp_options();
  opts.transport_partitions_override = 64;
  ChannelFixture fx(16 * KiB, 4, opts);
  EXPECT_EQ(fx.send->transport_partitions(), 4u);
}

TEST_P(Backpressure, WrSlotExhaustionMidFlushDrainsThroughBacklog) {
  // One QP, 64 single-partition messages per round, but only 16 WR slots
  // (QpCaps.max_send_wr): the flush must hit kResourceExhausted mid-round,
  // park the staged WRs on the per-QP backlog, and drain them as send CQEs
  // free slots — with no posts lost, duplicated, or reordered.
  ChannelFixture fx(64 * KiB, 64, static_options(/*tp=*/64, /*qps=*/1));
  ASSERT_EQ(fx.send->qp_count(), 1);
  for (int round = 1; round <= 3; ++round) {
    fx.run_round(round);
    EXPECT_TRUE(fx.send->test());
    EXPECT_TRUE(fx.recv->test());
    EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "round " << round;
    // Every partition is its own message: 64 WRs per round, all posted
    // even though at most 16 ever fit in the QP at once.
    EXPECT_EQ(fx.send->wrs_posted_total(),
              static_cast<std::uint64_t>(round) * 64);
  }
}

TEST_P(Backpressure, DeferredCallbacksReplayInPreadyOrder) {
  // Pready everything before the handshake completes: every post lands on
  // the deferred queue and must replay in pready order once the ack
  // arrives.  One QP and one partition per message make the wire order
  // observable: the receiver's arrival sequence is exactly the replay
  // order.
  ChannelFixture fx(32 * KiB, 8, static_options(/*tp=*/8, /*qps=*/1));
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  const std::vector<std::size_t> pready_order{5, 2, 7, 0, 3, 6, 1, 4};
  for (std::size_t p : pready_order) {
    ASSERT_TRUE(ok(fx.send->pready(p)));
  }
  std::vector<std::size_t> arrivals;
  Time last = 0;
  fx.recv->set_arrival_hook([&](std::size_t p, Time when) {
    EXPECT_GE(when, last);
    last = when;
    arrivals.push_back(p);
  });
  fx.drive();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_EQ(arrivals, pready_order);
}

PARTIB_INSTANTIATE_BACKENDS(InitErrors);
PARTIB_INSTANTIATE_BACKENDS(UsageErrors);
PARTIB_INSTANTIATE_BACKENDS(Overrides);
PARTIB_INSTANTIATE_BACKENDS(Backpressure);

}  // namespace
}  // namespace partib::test
