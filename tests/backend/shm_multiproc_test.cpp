// Multi-process shm smoke: the SPSC index discipline over memory that is
// genuinely shared between two PROCESSES, not two threads.
//
// ShmTransport itself is in-process (OpRec pointers + std::function do not
// survive a fork), so this test exercises the layout the cross-process
// story rests on: a fixed-size, offset-based byte ring in a
// MAP_SHARED|MAP_ANONYMOUS segment, forked child as consumer.  Everything
// in the segment is a POD offset or index — no pointers — which is the
// porting rule docs/BACKENDS.md states for a future process-spanning
// transport.
#include <gtest/gtest.h>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>

namespace partib::backend {
namespace {

constexpr std::size_t kSlots = 64;      // power of two
constexpr std::size_t kSlotBytes = 256;
constexpr std::uint64_t kMessages = 4096;

/// Shared-segment layout: header + slot array, addressed by index only.
struct SharedRing {
  alignas(64) std::atomic<std::uint64_t> tail;  // producer-owned
  alignas(64) std::atomic<std::uint64_t> head;  // consumer-owned
  alignas(64) unsigned char slots[kSlots][kSlotBytes];
};

static_assert(std::is_trivially_destructible_v<SharedRing>);

void fill_slot(unsigned char* slot, std::uint64_t seq) {
  for (std::size_t i = 0; i < kSlotBytes; ++i) {
    slot[i] = static_cast<unsigned char>((seq * 131 + i * 7 + 3) & 0xFF);
  }
}

bool check_slot(const unsigned char* slot, std::uint64_t seq) {
  for (std::size_t i = 0; i < kSlotBytes; ++i) {
    if (slot[i] != static_cast<unsigned char>((seq * 131 + i * 7 + 3) & 0xFF)) {
      return false;
    }
  }
  return true;
}

TEST(ShmMultiprocSmoke, ForkedConsumerSeesEveryMessageInOrder) {
  void* mem = ::mmap(nullptr, sizeof(SharedRing), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(mem, MAP_FAILED);
  auto* ring = new (mem) SharedRing;
  ring->tail.store(0, std::memory_order_relaxed);
  ring->head.store(0, std::memory_order_relaxed);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);

  if (child == 0) {
    // Consumer process: pop kMessages in order, verify each payload.
    // Exit code carries pass/fail across the process boundary.
    for (std::uint64_t seq = 0; seq < kMessages; ++seq) {
      std::uint64_t h = ring->head.load(std::memory_order_relaxed);
      while (ring->tail.load(std::memory_order_acquire) == h) {
        ::sched_yield();
      }
      if (!check_slot(ring->slots[h % kSlots], seq)) _exit(2);
      ring->head.store(h + 1, std::memory_order_release);
    }
    _exit(0);
  }

  // Producer (parent): push kMessages, honoring ring-full backpressure.
  for (std::uint64_t seq = 0; seq < kMessages; ++seq) {
    std::uint64_t t = ring->tail.load(std::memory_order_relaxed);
    while (t - ring->head.load(std::memory_order_acquire) >= kSlots) {
      ::sched_yield();
    }
    fill_slot(ring->slots[t % kSlots], seq);
    ring->tail.store(t + 1, std::memory_order_release);
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child saw corrupt or out-of-order data";
  EXPECT_EQ(ring->head.load(std::memory_order_acquire), kMessages);
  ASSERT_EQ(::munmap(mem, sizeof(SharedRing)), 0);
}

}  // namespace
}  // namespace partib::backend
