// Lifecycle fuzzing over the shm backend (tests/support/lifecycle_fuzz.hpp,
// run_shm_lifecycle_trial): seed-derived geometry + fault plan, driven in
// real time over the SPSC rings.  The per-round invariants (no lost
// completions, exact bytes on success, structured-failure symmetry) are
// asserted inside the trial; this file owns the corpus sweep and the
// replay contract — the outcome tuple is a pure function of the seed even
// though the timing is not.
#include <gtest/gtest.h>

#include <cstdint>

#include "support/lifecycle_fuzz.hpp"

namespace partib::test {
namespace {

TEST(ShmFaultFuzz, CorpusSweepHoldsLifecycleInvariants) {
  constexpr std::uint64_t kTrials = 60;
  std::uint64_t failed_channels = 0;
  std::uint64_t faulted_trials = 0;
  int shapes_seen[kFaultShapeCount] = {};
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const LifecycleTrialResult r = run_shm_lifecycle_trial(seed);
    shapes_seen[static_cast<int>(r.shape)]++;
    if (r.channel_failed) ++failed_channels;
    if (r.faults_injected > 0) ++faulted_trials;
  }
  // The corpus must actually exercise the fault plane, in both directions:
  // some trials inject faults, and among those some recover while some
  // exhaust their retry budget.
  EXPECT_GT(faulted_trials, 0u);
  EXPECT_GT(failed_channels, 0u);
  EXPECT_LT(failed_channels, faulted_trials);
  // Every shm-reachable shape (kNone..kMixed) appears in 60 trials.
  for (int s = 0; s <= static_cast<int>(FaultShape::kMixed); ++s) {
    EXPECT_GT(shapes_seen[s], 0) << "shape " << s << " never drawn";
  }
}

TEST(ShmFaultFuzz, SeedReplayReproducesOutcomeTuple) {
  // Timing on shm is wall-clock and unreproducible; the observable outcome
  // must replay anyway, because every fault decision keys off the post
  // ordinal.  Replay a slice of the corpus, including seeds from the sweep
  // above, and compare the full tuple.
  for (std::uint64_t seed = 2; seed <= 42; seed += 4) {
    const LifecycleTrialResult a = run_shm_lifecycle_trial(seed);
    const LifecycleTrialResult b = run_shm_lifecycle_trial(seed);
    EXPECT_EQ(a.shape, b.shape) << seed;
    EXPECT_EQ(a.channel_failed, b.channel_failed) << seed;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << seed;
    EXPECT_EQ(a.retransmits, b.retransmits) << seed;
    EXPECT_EQ(a.failed_ops, b.failed_ops) << seed;
  }
}

}  // namespace
}  // namespace partib::test
