// ShmTransport internals: SpscRing index arithmetic (wraparound, full,
// space), single-driver op round trips, and — the reason this binary
// carries the `threaded` ctest label — real owner-thread-per-node traffic
// that TSan checks against the ring's release/acquire contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "backend/backend.hpp"
#include "backend/shm/shm_transport.hpp"
#include "backend/shm/spsc_ring.hpp"
#include "common/units.hpp"
#include "fabric/rdma_op.hpp"

namespace partib::backend {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1025).capacity(), 2048u);
}

TEST(SpscRing, PushPopFifoAndEmpty) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(&out));
  EXPECT_EQ(ring.front(), nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(&out));
}

TEST(SpscRing, FullRejectsAndSpaceTracks) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.space(), 4u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.space(), 0u);
  EXPECT_FALSE(ring.try_push(99));  // full: rejected, not overwritten
  int out = 0;
  ASSERT_TRUE(ring.try_pop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_EQ(ring.space(), 1u);
  EXPECT_TRUE(ring.try_push(99));
}

TEST(SpscRing, WraparoundPreservesOrderPastIndexSeam) {
  // Push/pop far beyond the capacity so head/tail wrap the mask many
  // times; FIFO order must hold across every seam crossing.
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    while (ring.try_push(next_push)) ++next_push;
    std::uint64_t out = 0;
    for (int i = 0; i < 5 && ring.try_pop(&out); ++i) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_GT(next_pop, 8u * 50);
}

TEST(SpscRing, FrontIsStableUntilPopFront) {
  SpscRing<int> ring(4);
  ASSERT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_push(8));
  const int* f = ring.front();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, 7);
  EXPECT_EQ(ring.front(), f);  // peeking does not consume
  ring.pop_front();
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 8);
}

TEST(ShmTransportSingleDriver, OpRoundTripUnderSingleThreadPump) {
  ShmTransport t({});
  const fabric::NodeId a = t.add_node();
  const fabric::NodeId b = t.add_node();
  std::vector<std::byte> src(8 * KiB, std::byte{0x5A});
  std::vector<std::byte> dst(8 * KiB);

  int moved = 0, sent = 0, recvd = 0, failed = 0;
  fabric::RdmaOp op;
  op.src = a;
  op.dst = b;
  op.src_qp = 3;
  op.bytes = src.size();
  op.move_data = [&] {
    std::memcpy(dst.data(), src.data(), src.size());
    ++moved;
  };
  op.on_send_complete = [&](Time) { ++sent; };
  op.on_recv_complete = [&](Time) { ++recvd; };
  op.on_failed = [&](Time, fabric::OpFailure) { ++failed; };
  t.post_rdma_write(std::move(op));

  EXPECT_FALSE(t.idle());
  for (int pass = 0; pass < 64 && !t.idle(); ++pass) {
    t.progress_all(t.now());
  }
  EXPECT_TRUE(t.idle());
  EXPECT_EQ(moved, 1);
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(recvd, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(dst, src);
}

TEST(ShmTransportSingleDriver, RingFullBackpressureStagesWithoutLoss) {
  // Post 4x the ring capacity in one burst: the overflow parks in the
  // poster's staged queue and drains as the consumer frees slots.  Every
  // op must complete exactly once, in post order.
  ShmTransportOptions opts;
  opts.ring_capacity = 8;
  ShmTransport t(opts);
  const fabric::NodeId a = t.add_node();
  const fabric::NodeId b = t.add_node();

  constexpr int kOps = 32;
  std::vector<int> recv_order;
  int sent = 0, failed = 0;
  for (int i = 0; i < kOps; ++i) {
    fabric::RdmaOp op;
    op.src = a;
    op.dst = b;
    op.src_qp = 1;
    op.bytes = 64;
    op.on_recv_complete = [&recv_order, i](Time) { recv_order.push_back(i); };
    op.on_send_complete = [&](Time) { ++sent; };
    op.on_failed = [&](Time, fabric::OpFailure) { ++failed; };
    t.post_rdma_write(std::move(op));
  }
  for (int pass = 0; pass < 1024 && !t.idle(); ++pass) {
    t.progress_all(t.now());
  }
  ASSERT_TRUE(t.idle());
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(sent, kOps);
  ASSERT_EQ(recv_order.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(recv_order[i], i) << i;
}

// Real threads: one owner thread per node, each posting to the other and
// pumping its own progress.  The assertions are the lifecycle-fuzz
// contract at transport granularity — no lost completions (every op fires
// exactly one path) and exact bytes on success — and the run doubles as
// the TSan witness for SpscRing's publish/retire edges.
TEST(ShmTransportThreaded, TwoOwnerThreadsNoLostCompletionsExactBytes) {
  ShmTransportOptions opts;
  opts.ring_capacity = 16;  // small: forces backpressure under contention
  ShmTransport t(opts);
  const fabric::NodeId a = t.add_node();
  const fabric::NodeId b = t.add_node();

  static constexpr int kOpsPerSide = 256;
  static constexpr std::size_t kBytes = 1 * KiB;

  struct Side {
    fabric::NodeId self, peer;
    std::vector<std::byte> src, dst;  // dst is written by the PEER's ops
    std::atomic<int> sent{0}, recvd{0}, failed{0};
  };
  Side sides[2];
  sides[0].self = a;
  sides[0].peer = b;
  sides[1].self = b;
  sides[1].peer = a;
  for (int s = 0; s < 2; ++s) {
    sides[s].src.assign(kBytes * kOpsPerSide, std::byte(0xA0 + s));
    sides[s].dst.assign(kBytes * kOpsPerSide, std::byte{0});
  }

  auto owner = [&](int s) {
    Side& me = sides[s];
    Side& peer = sides[1 - s];
    for (int i = 0; i < kOpsPerSide; ++i) {
      fabric::RdmaOp op;
      op.src = me.self;
      op.dst = me.peer;
      op.src_qp = static_cast<std::uint64_t>(s) + 1;
      op.bytes = kBytes;
      std::byte* from = me.src.data() + static_cast<std::size_t>(i) * kBytes;
      std::byte* to = peer.dst.data() + static_cast<std::size_t>(i) * kBytes;
      // move_data runs on the destination's owner thread; the slices are
      // disjoint per op, so the only cross-thread edge is the ring's.
      op.move_data = [from, to] { std::memcpy(to, from, kBytes); };
      op.on_send_complete = [&me](Time) {
        me.sent.fetch_add(1, std::memory_order_relaxed);
      };
      op.on_recv_complete = [&peer](Time) {
        peer.recvd.fetch_add(1, std::memory_order_relaxed);
      };
      op.on_failed = [&me](Time, fabric::OpFailure) {
        me.failed.fetch_add(1, std::memory_order_relaxed);
      };
      t.post_rdma_write(std::move(op));
      t.progress_node(me.self, t.now());
    }
    // Keep pumping until both directions drain.
    while (me.sent.load(std::memory_order_relaxed) < kOpsPerSide ||
           me.recvd.load(std::memory_order_relaxed) < kOpsPerSide) {
      if (t.progress_node(me.self, t.now()) == 0) std::this_thread::yield();
    }
  };

  std::thread t0(owner, 0);
  std::thread t1(owner, 1);
  t0.join();
  t1.join();

  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(sides[s].sent.load(), kOpsPerSide) << "side " << s;
    EXPECT_EQ(sides[s].recvd.load(), kOpsPerSide) << "side " << s;
    EXPECT_EQ(sides[s].failed.load(), 0) << "side " << s;
    // Exact bytes: my dst holds the peer's pattern, every slice.
    EXPECT_EQ(sides[s].dst, sides[1 - s].src) << "side " << s;
  }
  EXPECT_TRUE(t.idle());
  EXPECT_EQ(t.stats().rdma_ops, 2u * kOpsPerSide);
  EXPECT_EQ(t.stats().failed_ops, 0u);
}

// Control-plane mailbox from a non-owner thread: posts may come from any
// thread; delivery runs on the destination's pump.
TEST(ShmTransportThreaded, ControlFromForeignThreadDeliversOnOwnerPump) {
  ShmTransport t({});
  const fabric::NodeId a = t.add_node();
  const fabric::NodeId b = t.add_node();
  std::atomic<int> delivered{0};

  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      t.send_control(a, b, [&] {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  while (delivered.load(std::memory_order_relaxed) < 100) {
    if (t.progress_node(b, t.now()) == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(delivered.load(), 100);
  EXPECT_EQ(t.stats().control_msgs, 100u);
}

}  // namespace
}  // namespace partib::backend
