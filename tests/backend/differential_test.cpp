// DES-vs-shm differential harness.
//
// The DES fluid fabric is the oracle: its timeline is virtual and pinned
// by the figure fingerprints.  The shm transport runs the identical
// part/mpi/verbs stack in real time over lock-free rings.  Time values
// differ by construction, so the differential contract is everything a
// correct transport may NOT change:
//
//   * delivered bytes   — the receive buffer matches the sent pattern
//                         byte for byte, every round, both backends;
//   * wire accounting   — wrs_posted_total and messages_received_total
//                         per round are equal (the aggregation plan is a
//                         pure function of geometry + aggregator, never
//                         of transport timing, for plan-deterministic
//                         aggregators: persistent / static / ploggp);
//   * completion set    — both sides reach test() == true each round with
//                         equal round counters;
//   * checker silence   — zero partib-check violations on either backend.
//
// Geometry corpus: >= 50 seeded (partitions, partition-size, aggregator,
// rounds) tuples drawn from sim::Rng(seed), same derivation for both
// backends.  Timer/learning aggregators are deliberately excluded: their
// plans depend on observed arrival *times*, which differ across backends
// by design (documented in docs/BACKENDS.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/units.hpp"
#include "sim/rng.hpp"
#include "support/backend_fixture.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

struct RoundDigest {
  std::uint64_t wrs_posted = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t recv_checksum = 0;  ///< FNV-1a of the receive buffer
  bool send_done = false;
  bool recv_done = false;

  bool operator==(const RoundDigest&) const = default;
};

struct Geometry {
  std::size_t partitions;
  std::size_t partition_bytes;
  int rounds;
  int aggregator;  // 0 = persistent, 1 = static, 2 = ploggp
  std::size_t static_tp;
  int static_qps;
};

Geometry derive_geometry(std::uint64_t seed) {
  sim::Rng rng(seed);
  Geometry g;
  g.partitions = std::size_t{1} << rng.uniform_int(0, 6);
  g.partition_bytes = std::size_t{1} << rng.uniform_int(6, 12);
  g.rounds = static_cast<int>(rng.uniform_int(1, 3));
  g.aggregator = static_cast<int>(rng.uniform_int(0, 2));
  g.static_tp = std::size_t{1} << rng.uniform_int(0, 6);
  g.static_qps = static_cast<int>(rng.uniform_int(1, 4));
  return g;
}

part::Options options_for(const Geometry& g) {
  switch (g.aggregator) {
    case 0: return persistent_options();
    case 1: return static_options(g.static_tp, g.static_qps);
    default: return ploggp_options();
  }
}

std::uint64_t fnv1a(const std::vector<std::byte>& buf) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : buf) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

/// Run the seed's geometry on the named backend; one digest per round.
std::vector<RoundDigest> run_on(const std::string& backend,
                                std::uint64_t seed) {
  const Geometry g = derive_geometry(seed);
  check::reset();
  check::ScopedPolicy policy(check::Policy::kCount);

  current_backend() = backend;
  std::vector<RoundDigest> digests;
  {
    ChannelFixture fx(g.partitions * g.partition_bytes, g.partitions,
                      options_for(g));
    for (int round = 1; round <= g.rounds; ++round) {
      fx.run_round(round);
      RoundDigest d;
      d.wrs_posted = fx.send->wrs_posted_total();
      d.messages_received = fx.recv->messages_received_total();
      d.recv_checksum = fnv1a(fx.rbuf);
      d.send_done = fx.send->test();
      d.recv_done = fx.recv->test();
      digests.push_back(d);

      // Ground truth, not just cross-equality: the receiver must hold the
      // sender's pattern on both backends.
      EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf))
          << backend << " seed " << seed << " round " << round;
    }
  }
  current_backend() = "des";

  if (check::hooks_compiled_in()) {
    EXPECT_EQ(check::violation_count(), 0u) << backend << " seed " << seed;
  }
  check::reset();
  return digests;
}

TEST(BackendDifferential, FiftyGeometriesShmMatchesDesOracle) {
  constexpr std::uint64_t kSeeds = 50;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::vector<RoundDigest> des = run_on("des", seed);
    const std::vector<RoundDigest> shm = run_on("shm", seed);
    ASSERT_EQ(des.size(), shm.size()) << "seed " << seed;
    for (std::size_t r = 0; r < des.size(); ++r) {
      EXPECT_EQ(des[r], shm[r]) << "seed " << seed << " round " << r + 1
                                << ": wrs " << des[r].wrs_posted << "/"
                                << shm[r].wrs_posted << ", msgs "
                                << des[r].messages_received << "/"
                                << shm[r].messages_received;
    }
  }
}

TEST(BackendDifferential, ShmReplaysItsOwnSeedDeterministically) {
  // The shm transport is real-time, so its *timing* is not reproducible —
  // but its observable results must be: same seed, same digests.
  for (std::uint64_t seed = 3; seed <= 23; seed += 5) {
    const std::vector<RoundDigest> a = run_on("shm", seed);
    const std::vector<RoundDigest> b = run_on("shm", seed);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

}  // namespace
}  // namespace partib::test
