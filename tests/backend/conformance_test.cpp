// Cross-backend conformance: the backend registry contract, and the
// Backend/Transport surface every implementation must satisfy uniformly.
//
// The verbs/part lifecycle suites (tests/verbs/, tests/part/) are
// parameterized over the same backend list and carry the deep semantic
// checks; this file owns the registry itself plus the op-surface
// obligations stated in backend/transport.hpp — exactly-one-completion,
// control-plane delivery, fault-plane inject/reset, stats accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "check/check.hpp"
#include "common/units.hpp"
#include "fabric/rdma_op.hpp"
#include "support/backend_fixture.hpp"
#include "verbs/verbs.hpp"

namespace partib::backend {
namespace {

TEST(BackendRegistry, DesIsFirstAndBothConformanceBackendsRegistered) {
  const std::vector<std::string> names = backend_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "des");  // the documented default
  EXPECT_TRUE(backend_registered("des"));
  EXPECT_TRUE(backend_registered("shm"));
  EXPECT_FALSE(backend_registered("no-such-transport"));
}

TEST(BackendRegistry, MakeBackendUnknownNameReportsAndReturnsNull) {
  check::reset();
  check::ScopedPolicy policy(check::Policy::kCount);
  EXPECT_EQ(make_backend("no-such-transport"), nullptr);
  if (check::hooks_compiled_in()) {
    EXPECT_EQ(check::count_rule("backend.unknown"), 1u);
  }
  check::reset();
}

TEST(BackendRegistry, DefaultNameComesFromEnvironment) {
  ::unsetenv("PARTIB_BACKEND");
  EXPECT_EQ(default_backend_name(), "des");
  ::setenv("PARTIB_BACKEND", "shm", 1);
  EXPECT_EQ(default_backend_name(), "shm");
  ::unsetenv("PARTIB_BACKEND");
}

TEST(BackendRegistry, FactoriesProduceSelfDescribingBackends) {
  for (const std::string& name : backend_names()) {
    auto be = make_backend(name);
    ASSERT_NE(be, nullptr) << name;
    EXPECT_EQ(be->name(), name);
    EXPECT_FALSE(be->transport().kind().empty()) << name;
    // The timer substrate must exist and be the same object every call.
    EXPECT_EQ(&be->engine(), &be->engine()) << name;
  }
}

using Conformance = test::BackendTest;

TEST_P(Conformance, CleanBackendIsIdleAndAtTimeZeroStats) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  EXPECT_EQ(be->run_until_idle(), 0u);  // nothing pending on a fresh backend
  Transport& t = be->transport();
  EXPECT_EQ(t.node_count(), 0);
  const fabric::FabricStats& s = t.stats();
  EXPECT_EQ(s.rdma_ops, 0u);
  EXPECT_EQ(s.control_msgs, 0u);
  EXPECT_EQ(s.payload_bytes, 0u);
  EXPECT_EQ(s.failed_ops, 0u);
}

TEST_P(Conformance, RealTimeFlagMatchesBackendKind) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  EXPECT_EQ(be->real_time(), GetParam() != "des");
  // now() must be non-decreasing on every backend.
  const Time a = be->now();
  be->progress();
  EXPECT_GE(be->now(), a);
}

TEST_P(Conformance, AddNodeAllocatesDenseIds) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  Transport& t = be->transport();
  EXPECT_EQ(t.add_node(), 0);
  EXPECT_EQ(t.add_node(), 1);
  EXPECT_EQ(t.add_node(), 2);
  EXPECT_EQ(t.node_count(), 3);
}

TEST_P(Conformance, CopiesDataReflectsConfig) {
  Config cfg;
  cfg.copy_data = false;
  auto be = make_backend(GetParam(), cfg);
  ASSERT_NE(be, nullptr);
  EXPECT_FALSE(be->transport().copies_data());
  EXPECT_TRUE(make_backend(GetParam())->transport().copies_data());
}

TEST_P(Conformance, WireBytesAccountSegmentHeaders) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  Transport& t = be->transport();
  // Headers make wire > payload, zero-byte ops still cost one segment,
  // and segmentation is monotone in the payload.
  EXPECT_GT(t.wire_bytes_for(0), 0u);
  EXPECT_GT(t.wire_bytes_for(4 * KiB), 4 * KiB);
  EXPECT_GT(t.wire_bytes_for(64 * KiB), t.wire_bytes_for(4 * KiB));
}

TEST_P(Conformance, ControlPlaneDeliversInOrder) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  Transport& t = be->transport();
  const fabric::NodeId a = t.add_node();
  const fabric::NodeId b = t.add_node();
  std::vector<int> delivered;
  t.send_control(a, b, [&] { delivered.push_back(1); });
  t.send_control(a, b, [&] { delivered.push_back(2); });
  t.send_control(b, a, [&] { delivered.push_back(3); });
  be->run_until_idle();
  ASSERT_EQ(delivered.size(), 3u);
  // Same (src, dst) pair: FIFO.
  EXPECT_LT(std::find(delivered.begin(), delivered.end(), 1),
            std::find(delivered.begin(), delivered.end(), 2));
  EXPECT_EQ(t.stats().control_msgs, 3u);
}

TEST_P(Conformance, RawOpRunsExactlyOneCompletionPath) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  Transport& t = be->transport();
  const fabric::NodeId a = t.add_node();
  const fabric::NodeId b = t.add_node();
  std::vector<std::byte> src(4 * KiB, std::byte{0x7E});
  std::vector<std::byte> dst(4 * KiB);
  int moved = 0;
  int sent = 0;
  int recvd = 0;
  int failed = 0;
  fabric::RdmaOp op;
  op.src = a;
  op.dst = b;
  op.src_qp = 1;
  op.bytes = src.size();
  op.move_data = [&] {
    std::memcpy(dst.data(), src.data(), src.size());
    ++moved;
  };
  op.on_send_complete = [&](Time) { ++sent; };
  op.on_recv_complete = [&](Time) { ++recvd; };
  op.on_failed = [&](Time, fabric::OpFailure) { ++failed; };
  t.post_rdma_write(std::move(op));
  be->run_until_idle();
  EXPECT_EQ(moved, 1);
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(recvd, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(dst, src);
  const fabric::FabricStats& s = t.stats();
  EXPECT_EQ(s.rdma_ops, 1u);
  EXPECT_EQ(s.payload_bytes, src.size());
  EXPECT_GE(s.wire_bytes, s.payload_bytes);
}

TEST_P(Conformance, InjectedQpErrorFailsSubsequentPostsUntilReset) {
  auto be = make_backend(GetParam());
  ASSERT_NE(be, nullptr);
  Transport& t = be->transport();
  const fabric::NodeId a = t.add_node();
  (void)t.add_node();
  constexpr std::uint64_t kQp = 42;

  EXPECT_FALSE(t.qp_chain_errored(kQp));
  t.inject_qp_error(kQp);
  EXPECT_TRUE(t.qp_chain_errored(kQp));

  int failed = 0;
  int sent = 0;
  fabric::OpFailure failure{};
  fabric::RdmaOp op;
  op.src = a;
  op.dst = 1;
  op.src_qp = kQp;
  op.bytes = 64;
  op.on_send_complete = [&](Time) { ++sent; };
  op.on_failed = [&](Time, fabric::OpFailure f) {
    ++failed;
    failure = f;
  };
  t.post_rdma_write(std::move(op));
  be->run_until_idle();
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(sent, 0);
  EXPECT_EQ(failure, fabric::OpFailure::kFlushed);
  EXPECT_EQ(t.stats().failed_ops, 1u);

  t.reset_qp_chain(kQp);
  EXPECT_FALSE(t.qp_chain_errored(kQp));
}

TEST_P(Conformance, VerbsLifecycleRoundtrip) {
  // The whole Device/Pd/Cq/Qp/Mr object model over this backend, in one
  // breath — the smoke test the per-layer parameterized suites expand on.
  test::BackendVerbsFx fx;
  auto [s, r] = fx.connected_pair();
  std::memset(fx.sbuf.data(), 0x3D, 2 * KiB);
  ASSERT_TRUE(ok(r->post_recv(verbs::RecvWr{7, {}})));
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(2 * KiB, 99))));
  fx.drive();
  const auto rwcs = fx.drain(*fx.rcq);
  const auto swcs = fx.drain(*fx.scq);
  ASSERT_EQ(rwcs.size(), 1u);
  ASSERT_EQ(swcs.size(), 1u);
  EXPECT_EQ(rwcs[0].status, verbs::WcStatus::kSuccess);
  EXPECT_EQ(rwcs[0].imm, 99u);
  EXPECT_EQ(swcs[0].status, verbs::WcStatus::kSuccess);
  EXPECT_EQ(std::memcmp(fx.rbuf.data(), fx.sbuf.data(), 2 * KiB), 0);
}

PARTIB_INSTANTIATE_BACKENDS(Conformance);

}  // namespace
}  // namespace partib::backend
