// Ordered matching of Psend_init/Precv_init pairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "mpi/matcher.hpp"
#include "support/reference_matcher.hpp"

namespace partib::mpi {
namespace {

SendInit init_for(int peer, int tag, int comm, std::size_t bytes = 64) {
  SendInit si;
  si.key = MatchKey{peer, tag, comm};
  si.total_bytes = bytes;
  return si;
}

TEST(Matcher, RecvFirstThenSend) {
  InitMatcher m;
  std::size_t matched_bytes = 0;
  m.post_recv_init(MatchKey{0, 1, 2},
                   [&](const SendInit& si) { matched_bytes = si.total_bytes; });
  EXPECT_EQ(m.pending_recvs(), 1u);
  m.on_send_init(init_for(0, 1, 2, 128));
  EXPECT_EQ(matched_bytes, 128u);
  EXPECT_EQ(m.pending_recvs(), 0u);
  EXPECT_EQ(m.unexpected_sends(), 0u);
}

TEST(Matcher, SendFirstThenRecv) {
  InitMatcher m;
  m.on_send_init(init_for(3, 4, 5, 256));
  EXPECT_EQ(m.unexpected_sends(), 1u);
  std::size_t matched_bytes = 0;
  m.post_recv_init(MatchKey{3, 4, 5},
                   [&](const SendInit& si) { matched_bytes = si.total_bytes; });
  EXPECT_EQ(matched_bytes, 256u);
  EXPECT_EQ(m.unexpected_sends(), 0u);
}

TEST(Matcher, DifferentTagsDoNotMatch) {
  InitMatcher m;
  bool matched = false;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit&) { matched = true; });
  m.on_send_init(init_for(0, 2, 0));
  EXPECT_FALSE(matched);
  EXPECT_EQ(m.pending_recvs(), 1u);
  EXPECT_EQ(m.unexpected_sends(), 1u);
}

TEST(Matcher, DifferentPeersDoNotMatch) {
  InitMatcher m;
  bool matched = false;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit&) { matched = true; });
  m.on_send_init(init_for(7, 1, 0));
  EXPECT_FALSE(matched);
}

TEST(Matcher, DifferentCommunicatorsDoNotMatch) {
  InitMatcher m;
  bool matched = false;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit&) { matched = true; });
  m.on_send_init(init_for(0, 1, 9));
  EXPECT_FALSE(matched);
}

TEST(Matcher, SameKeyMatchesInPostedOrder) {
  InitMatcher m;
  std::vector<std::size_t> matched;
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  m.on_send_init(init_for(0, 1, 0, 111));
  m.on_send_init(init_for(0, 1, 0, 222));
  EXPECT_EQ(matched, (std::vector<std::size_t>{111, 222}));
}

TEST(Matcher, UnexpectedQueueDrainsInArrivalOrder) {
  InitMatcher m;
  m.on_send_init(init_for(0, 1, 0, 111));
  m.on_send_init(init_for(0, 1, 0, 222));
  std::vector<std::size_t> matched;
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  EXPECT_EQ(matched, (std::vector<std::size_t>{111, 222}));
}

TEST(Matcher, InterleavedKeysStaySeparate) {
  InitMatcher m;
  std::vector<int> tags;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit& si) {
    tags.push_back(si.key.tag);
  });
  m.post_recv_init(MatchKey{0, 2, 0}, [&](const SendInit& si) {
    tags.push_back(si.key.tag);
  });
  m.on_send_init(init_for(0, 2, 0));
  m.on_send_init(init_for(0, 1, 0));
  EXPECT_EQ(tags, (std::vector<int>{2, 1}));
}

TEST(Matcher, DifferentialFuzzAgainstMapDequeReference) {
  // The flat-vector matcher must produce exactly the match sequence of the
  // seed's map/deque implementation (tests/support/reference_matcher.hpp):
  // same pairings, in the same order, for any interleaving of posts.
  // Each recv is stamped with a posting index and each send with a unique
  // total_bytes, so a match event is the pair (recv index, send stamp).
  std::mt19937 rng(424242);
  for (int iter = 0; iter < 200; ++iter) {
    InitMatcher m;
    test::ReferenceInitMatcher ref;
    std::vector<std::string> got, want;
    std::size_t next_recv = 0;
    std::size_t next_bytes = 1;
    const int ops = 20 + static_cast<int>(rng() % 60);
    for (int op = 0; op < ops; ++op) {
      const MatchKey key{static_cast<int>(rng() % 3),
                         static_cast<int>(rng() % 3), 0};
      if (rng() % 2 == 0) {
        const std::size_t r = next_recv++;
        m.post_recv_init(key, [&got, r](const SendInit& si) {
          got.push_back(std::to_string(r) + ":" +
                        std::to_string(si.total_bytes));
        });
        ref.post_recv_init(key, [&want, r](const SendInit& si) {
          want.push_back(std::to_string(r) + ":" +
                         std::to_string(si.total_bytes));
        });
      } else {
        const SendInit si = init_for(key.peer, key.tag, key.comm_id,
                                     next_bytes++);
        m.on_send_init(si);
        ref.on_send_init(si);
      }
      ASSERT_EQ(got, want) << "iter " << iter << " op " << op;
      ASSERT_EQ(m.pending_recvs(), ref.pending_recvs());
      ASSERT_EQ(m.unexpected_sends(), ref.unexpected_sends());
    }
  }
}

}  // namespace
}  // namespace partib::mpi
