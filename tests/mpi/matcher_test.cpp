// Ordered matching of Psend_init/Precv_init pairs.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/matcher.hpp"

namespace partib::mpi {
namespace {

SendInit init_for(int peer, int tag, int comm, std::size_t bytes = 64) {
  SendInit si;
  si.key = MatchKey{peer, tag, comm};
  si.total_bytes = bytes;
  return si;
}

TEST(Matcher, RecvFirstThenSend) {
  InitMatcher m;
  std::size_t matched_bytes = 0;
  m.post_recv_init(MatchKey{0, 1, 2},
                   [&](const SendInit& si) { matched_bytes = si.total_bytes; });
  EXPECT_EQ(m.pending_recvs(), 1u);
  m.on_send_init(init_for(0, 1, 2, 128));
  EXPECT_EQ(matched_bytes, 128u);
  EXPECT_EQ(m.pending_recvs(), 0u);
  EXPECT_EQ(m.unexpected_sends(), 0u);
}

TEST(Matcher, SendFirstThenRecv) {
  InitMatcher m;
  m.on_send_init(init_for(3, 4, 5, 256));
  EXPECT_EQ(m.unexpected_sends(), 1u);
  std::size_t matched_bytes = 0;
  m.post_recv_init(MatchKey{3, 4, 5},
                   [&](const SendInit& si) { matched_bytes = si.total_bytes; });
  EXPECT_EQ(matched_bytes, 256u);
  EXPECT_EQ(m.unexpected_sends(), 0u);
}

TEST(Matcher, DifferentTagsDoNotMatch) {
  InitMatcher m;
  bool matched = false;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit&) { matched = true; });
  m.on_send_init(init_for(0, 2, 0));
  EXPECT_FALSE(matched);
  EXPECT_EQ(m.pending_recvs(), 1u);
  EXPECT_EQ(m.unexpected_sends(), 1u);
}

TEST(Matcher, DifferentPeersDoNotMatch) {
  InitMatcher m;
  bool matched = false;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit&) { matched = true; });
  m.on_send_init(init_for(7, 1, 0));
  EXPECT_FALSE(matched);
}

TEST(Matcher, DifferentCommunicatorsDoNotMatch) {
  InitMatcher m;
  bool matched = false;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit&) { matched = true; });
  m.on_send_init(init_for(0, 1, 9));
  EXPECT_FALSE(matched);
}

TEST(Matcher, SameKeyMatchesInPostedOrder) {
  InitMatcher m;
  std::vector<std::size_t> matched;
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  m.on_send_init(init_for(0, 1, 0, 111));
  m.on_send_init(init_for(0, 1, 0, 222));
  EXPECT_EQ(matched, (std::vector<std::size_t>{111, 222}));
}

TEST(Matcher, UnexpectedQueueDrainsInArrivalOrder) {
  InitMatcher m;
  m.on_send_init(init_for(0, 1, 0, 111));
  m.on_send_init(init_for(0, 1, 0, 222));
  std::vector<std::size_t> matched;
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  m.post_recv_init(MatchKey{0, 1, 0},
                   [&](const SendInit& si) { matched.push_back(si.total_bytes); });
  EXPECT_EQ(matched, (std::vector<std::size_t>{111, 222}));
}

TEST(Matcher, InterleavedKeysStaySeparate) {
  InitMatcher m;
  std::vector<int> tags;
  m.post_recv_init(MatchKey{0, 1, 0}, [&](const SendInit& si) {
    tags.push_back(si.key.tag);
  });
  m.post_recv_init(MatchKey{0, 2, 0}, [&](const SendInit& si) {
    tags.push_back(si.key.tag);
  });
  m.on_send_init(init_for(0, 2, 0));
  m.on_send_init(init_for(0, 1, 0));
  EXPECT_EQ(tags, (std::vector<int>{2, 1}));
}

}  // namespace
}  // namespace partib::mpi
