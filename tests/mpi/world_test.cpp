// World / Rank wiring: per-rank resources, control-plane routing,
// communicator-id allocation, option plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/world.hpp"
#include "sim/engine.hpp"

namespace partib::mpi {
namespace {

TEST(World, RanksGetDistinctNodesAndIds) {
  sim::Engine engine;
  WorldOptions o;
  o.ranks = 4;
  World world(engine, o);
  ASSERT_EQ(world.size(), 4);
  std::vector<fabric::NodeId> nodes;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(world.rank(i).id(), i);
    nodes.push_back(world.rank(i).node());
  }
  std::sort(nodes.begin(), nodes.end());
  EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end());
}

TEST(World, CpuUsesConfiguredCoreCount) {
  sim::Engine engine;
  WorldOptions o;
  o.cores_per_rank = 12;
  World world(engine, o);
  EXPECT_EQ(world.rank(0).cpu().cores(), 12);
}

TEST(World, ControlMessagesArriveWithControlLatency) {
  sim::Engine engine;
  WorldOptions o;
  World world(engine, o);
  Time delivered = -1;
  world.send_control(0, 1, [&] { delivered = engine.now(); });
  engine.run();
  EXPECT_EQ(delivered, o.nic.wire.L + o.nic.ctrl_overhead);
}

TEST(World, ControlMessagesPreserveOrderPerPair) {
  sim::Engine engine;
  World world(engine, {});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    world.send_control(0, 1, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(World, CommIdsMonotonic) {
  sim::Engine engine;
  World world(engine, {});
  const int a = world.next_comm_id();
  const int b = world.next_comm_id();
  EXPECT_LT(a, b);
}

TEST(World, DpuResourceOnlyWhenEnabled) {
  sim::Engine engine;
  WorldOptions off;
  World w1(engine, off);
  EXPECT_EQ(w1.rank(0).dpu(), nullptr);
  WorldOptions on;
  on.dpu_aggregation = true;
  World w2(engine, on);
  EXPECT_NE(w2.rank(0).dpu(), nullptr);
}

TEST(World, FabricSharedAcrossRanks) {
  sim::Engine engine;
  WorldOptions o;
  o.ranks = 3;
  World world(engine, o);
  EXPECT_EQ(world.fab().node_count(), 3);
  EXPECT_EQ(&world.rank(0).world(), &world);
}

TEST(World, DoorbellIsPerRank) {
  sim::Engine engine;
  WorldOptions o;
  o.ranks = 2;
  World world(engine, o);
  world.rank(0).doorbell().request(100, [](Time, Time) {});
  engine.run();
  EXPECT_EQ(world.rank(0).doorbell().busy_time(), 100);
  EXPECT_EQ(world.rank(1).doorbell().busy_time(), 0);
}

}  // namespace
}  // namespace partib::mpi
