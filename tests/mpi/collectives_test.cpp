// Collectives over the eager layer: barrier, broadcast, allreduce.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/p2p.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"

namespace partib::mpi {
namespace {

struct Fx {
  sim::Engine engine;
  mpi::World world;
  std::vector<std::unique_ptr<P2pEndpoint>> eps;
  std::vector<std::unique_ptr<Collectives>> colls;

  explicit Fx(int ranks) : world(engine, make(ranks)) {
    for (int i = 0; i < ranks; ++i) {
      eps.push_back(std::make_unique<P2pEndpoint>(world.rank(i)));
      colls.push_back(std::make_unique<Collectives>(*eps.back()));
    }
  }
  static WorldOptions make(int ranks) {
    WorldOptions o;
    o.ranks = ranks;
    return o;
  }
  Collectives& coll(int i) { return *colls[static_cast<std::size_t>(i)]; }
};

TEST(Barrier, AllRanksReleaseTogether) {
  Fx fx(6);
  int released = 0;
  std::vector<Time> when(6, -1);
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(ok(fx.coll(r).barrier(100, [&, r] {
      ++released;
      when[static_cast<std::size_t>(r)] = fx.engine.now();
    })));
  }
  fx.engine.run();
  EXPECT_EQ(released, 6);
}

TEST(Barrier, NoEarlyRelease) {
  // Five of six ranks enter; nobody may be released until the sixth does.
  Fx fx(6);
  int released = 0;
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(ok(fx.coll(r).barrier(100, [&] { ++released; })));
  }
  fx.engine.run();
  EXPECT_EQ(released, 0);
  ASSERT_TRUE(ok(fx.coll(5).barrier(100, [&] { ++released; })));
  fx.engine.run();
  EXPECT_EQ(released, 6);
}

TEST(Barrier, SingleRankTrivial) {
  Fx fx(1);
  bool released = false;
  ASSERT_TRUE(ok(fx.coll(0).barrier(1, [&] { released = true; })));
  fx.engine.run();
  EXPECT_TRUE(released);
}

TEST(Barrier, BackToBackBarriersDoNotCross) {
  Fx fx(4);
  std::vector<int> order;
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(ok(fx.coll(r).barrier(100, [&, r] {
      order.push_back(1);
      // Immediately enter a second barrier on a different base tag.
      ASSERT_TRUE(ok(fx.coll(r).barrier(200, [&] { order.push_back(2); })));
    })));
  }
  fx.engine.run();
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(order[i], 1);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(order[i], 2);
}

TEST(Broadcast, RootZeroReachesEveryRank) {
  Fx fx(7);  // non-power-of-two on purpose
  std::vector<std::vector<std::byte>> bufs(
      7, std::vector<std::byte>(512));
  for (std::size_t i = 0; i < 512; ++i) {
    bufs[0][i] = static_cast<std::byte>(i & 0xFF);
  }
  int done = 0;
  for (int r = 0; r < 7; ++r) {
    ASSERT_TRUE(ok(fx.coll(r).broadcast(
        0, 300, bufs[static_cast<std::size_t>(r)], [&] { ++done; })));
  }
  fx.engine.run();
  EXPECT_EQ(done, 7);
  for (int r = 1; r < 7; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], bufs[0]) << r;
  }
}

TEST(Broadcast, NonZeroRoot) {
  Fx fx(5);
  std::vector<std::vector<std::byte>> bufs(5, std::vector<std::byte>(64));
  for (std::size_t i = 0; i < 64; ++i) {
    bufs[3][i] = static_cast<std::byte>(0xA0 + i);
  }
  int done = 0;
  for (int r = 0; r < 5; ++r) {
    ASSERT_TRUE(ok(fx.coll(r).broadcast(
        3, 300, bufs[static_cast<std::size_t>(r)], [&] { ++done; })));
  }
  fx.engine.run();
  EXPECT_EQ(done, 5);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], bufs[3]) << r;
  }
}

TEST(Broadcast, RejectsOversizedAndBadRoot) {
  Fx fx(2);
  std::vector<std::byte> big(P2pEndpoint::kEagerLimit + 1);
  EXPECT_EQ(fx.coll(0).broadcast(0, 1, big, [] {}),
            Status::kResourceExhausted);
  std::vector<std::byte> small(8);
  EXPECT_EQ(fx.coll(0).broadcast(5, 1, small, [] {}),
            Status::kInvalidArgument);
}

TEST(Allreduce, SumsAcrossPowerOfTwoRanks) {
  Fx fx(8);
  std::vector<std::vector<double>> vals(8, std::vector<double>(4));
  for (int r = 0; r < 8; ++r) {
    for (int j = 0; j < 4; ++j) {
      vals[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] =
          r + j * 10.0;
    }
  }
  int done = 0;
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(ok(fx.coll(r).allreduce_sum(
        400, vals[static_cast<std::size_t>(r)], [&] { ++done; })));
  }
  fx.engine.run();
  EXPECT_EQ(done, 8);
  // Sum over ranks of (r + 10j) = 28 + 80j.
  for (int r = 0; r < 8; ++r) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(
          vals[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)],
          28.0 + 80.0 * j)
          << r << " " << j;
    }
  }
}

TEST(Allreduce, NonPowerOfTwoUnsupported) {
  Fx fx(3);
  std::vector<double> v(2, 1.0);
  EXPECT_EQ(fx.coll(0).allreduce_sum(1, v, [] {}), Status::kUnsupported);
}

TEST(Allreduce, SingleRankIdentity) {
  Fx fx(1);
  std::vector<double> v = {3.5, -1.0};
  bool done = false;
  ASSERT_TRUE(ok(fx.coll(0).allreduce_sum(1, v, [&] { done = true; })));
  fx.engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(v[0], 3.5);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
}

}  // namespace
}  // namespace partib::mpi
