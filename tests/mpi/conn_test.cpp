// The on-demand connection manager (mpi/conn.hpp): lazy establishment
// through the control plane, LRU recycling at the connection cap,
// SRQ reservation/refill, shared-CQ demultiplexing, and the conn.* rule
// diagnostics.  Test names start with ConnManager so the TSan CI job's
// regex picks them up alongside the runner suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "mpi/conn.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"

namespace partib::mpi {
namespace {

struct Fx {
  sim::Engine engine;
  WorldOptions opts;
  std::unique_ptr<World> world;

  explicit Fx(int ranks = 3, int cap = 0) {
    check::reset();
    opts.ranks = ranks;
    opts.conn_max_connections = cap;
    opts.conn_srq_capacity = 64;
    opts.conn_srq_limit = 8;
    opts.cq_depth = 1024;
    world = std::make_unique<World>(engine, opts);
  }

  /// Passive side expects `token`; active side connects; run to quiescence.
  ConnectionManager::ConnId establish(int from, int to, std::uint64_t token,
                                      int qp_count = 2) {
    ConnectionManager& a = world->rank(from).connections();
    ConnectionManager& p = world->rank(to).connections();
    p.expect(token, [](ConnectionManager::Connection&) {});
    const auto id =
        a.connect(to, qp_count, token, [](ConnectionManager::Connection&) {});
    engine.run();
    return id;
  }
};

TEST(ConnManagerLazyEstablish, ChainReachesRtsOnBothSides) {
  Fx fx;
  ConnectionManager& active = fx.world->rank(0).connections();
  ConnectionManager& passive = fx.world->rank(1).connections();

  bool accepted = false;
  bool ready = false;
  passive.expect(0xAB, [&](ConnectionManager::Connection& c) {
    accepted = true;
    EXPECT_EQ(c.peer, 0);
    EXPECT_TRUE(c.established);
    for (verbs::Qp* qp : c.qps) {
      EXPECT_EQ(qp->state(), verbs::QpState::kRts);
    }
  });
  const auto id =
      active.connect(1, 2, 0xAB, [&](ConnectionManager::Connection& c) {
        ready = true;
        EXPECT_EQ(c.qps.size(), 2u);
        for (verbs::Qp* qp : c.qps) {
          EXPECT_EQ(qp->state(), verbs::QpState::kRts);
        }
      });

  // Establishment is asynchronous: nothing is ready before the
  // control-plane round trip has run.
  EXPECT_FALSE(ready);
  fx.engine.run();
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(active.connection(id).established);
  EXPECT_EQ(active.established_connections(), 1);
  EXPECT_EQ(passive.established_connections(), 1);
  EXPECT_EQ(active.total_establishments(), 1u);
}

TEST(ConnManagerLazyEstablish, SharedResourcesAreCreatedOncePerRank) {
  Fx fx;
  Rank& r0 = fx.world->rank(0);
  EXPECT_FALSE(r0.has_connections());
  ConnectionManager& mgr = r0.connections();
  EXPECT_TRUE(r0.has_connections());
  EXPECT_EQ(&mgr, &r0.connections());  // lazy singleton

  // Many connections, still one CQ and one SRQ on the rank.
  fx.establish(0, 1, 1);
  fx.establish(0, 2, 2);
  const verbs::ResourceFootprint fp = r0.context().footprint();
  EXPECT_EQ(fp.cqs, 1);
  EXPECT_EQ(fp.srqs, 1);
  EXPECT_EQ(fp.qps, 4);  // 2 chains x 2 QPs
}

TEST(ConnManagerRecycle, LruVictimIsEvictedThroughReset) {
  Fx fx(/*ranks=*/3, /*cap=*/1);
  ConnectionManager& mgr = fx.world->rank(0).connections();

  const auto c1 = fx.establish(0, 1, 11);
  verbs::Qp* old_qp = mgr.connection(c1).qps[0];
  mgr.release(c1);  // warm but recyclable
  EXPECT_EQ(mgr.established_connections(), 1);

  const auto c2 = fx.establish(0, 2, 22);
  // The cap forced the idle slot through ERROR->RESET->INIT->RTR->RTS
  // recycling; the slot (and its QPs) are reused in place.
  EXPECT_EQ(c2, c1);
  EXPECT_EQ(mgr.connection(c2).qps[0], old_qp);
  EXPECT_EQ(mgr.connection(c2).peer, 2);
  EXPECT_EQ(mgr.slot_count(), 1u);
  EXPECT_EQ(mgr.established_connections(), 1);
  EXPECT_EQ(mgr.total_recycles(), 1u);
  EXPECT_EQ(mgr.connection(c2).stats.establishments, 2u);

  // The victim's peer half was torn down by the disconnect notification.
  EXPECT_EQ(fx.world->rank(1).connections().established_connections(), 0);
}

TEST(ConnManagerRecycle, OverCapWithAllLeasedRaisesConnCapDiagnostic) {
  Fx fx(/*ranks=*/3, /*cap=*/1);
  check::ScopedPolicy quiet(check::Policy::kCount);
  ConnectionManager& mgr = fx.world->rank(0).connections();

  fx.establish(0, 1, 11);  // leased — never released
  EXPECT_EQ(check::count_rule("conn.cap"), 0u);
  fx.establish(0, 2, 22);
  // Soft cap: the connection is still made, the checker records it.
  EXPECT_EQ(mgr.established_connections(), 2);
  EXPECT_EQ(mgr.slot_count(), 2u);
  EXPECT_EQ(check::count_rule("conn.cap"), 1u);
  EXPECT_EQ(mgr.total_recycles(), 0u);
}

TEST(ConnManagerStats, PerConnectionByteAccounting) {
  Fx fx;
  ConnectionManager& mgr = fx.world->rank(0).connections();
  const auto id = fx.establish(0, 1, 11);
  mgr.note_posted(id, 4096);
  mgr.note_posted(id, 512);
  EXPECT_EQ(mgr.connection(id).stats.bytes, 4608u);
  EXPECT_EQ(mgr.total_bytes(), 4608u);
}

TEST(ConnManagerSrq, ReservationGrowsAndRefillsTheSrq) {
  Fx fx;
  ConnectionManager& mgr = fx.world->rank(0).connections();
  EXPECT_EQ(mgr.srq().posted(), 0u);

  mgr.reserve_recv_wrs(16);  // under the 64-WR floor
  EXPECT_EQ(mgr.srq().posted(), 16u);
  EXPECT_EQ(mgr.srq().attrs().max_wr, 64);

  mgr.reserve_recv_wrs(200);  // demand outruns the floor: SRQ grows
  EXPECT_EQ(mgr.reserved_recv_wrs(), 216u);
  EXPECT_EQ(mgr.srq().posted(), 216u);
  EXPECT_GE(mgr.srq().attrs().max_wr, 216);

  mgr.release_recv_wrs(200);
  EXPECT_EQ(mgr.reserved_recv_wrs(), 16u);
}

TEST(ConnManagerDemux, UnboundQpNumRaisesConnDemuxDiagnostic) {
  Fx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  ConnectionManager& mgr = fx.world->rank(0).connections();

  int routed_count = 0;
  mgr.bind(verbs::Device::kFirstQpNum + 7,
           [&](const verbs::Wc&) { ++routed_count; });

  verbs::Wc bound;
  bound.qp_num = verbs::Device::kFirstQpNum + 7;
  verbs::Wc unbound;
  unbound.qp_num = verbs::Device::kFirstQpNum + 9;
  mgr.cq().push(bound);
  mgr.cq().push(unbound);
  const int routed = mgr.router().drain(mgr.cq());

  EXPECT_EQ(routed, 1);
  EXPECT_EQ(routed_count, 1);
  EXPECT_EQ(check::count_rule("conn.demux"), 1u);

  // After unbind the previously bound qp_num misses too.
  mgr.unbind(verbs::Device::kFirstQpNum + 7);
  mgr.cq().push(bound);
  mgr.router().drain(mgr.cq());
  EXPECT_EQ(check::count_rule("conn.demux"), 2u);
}

TEST(ConnManagerDemux, CompletionsAreDispatchedFromTheSharedCq) {
  Fx fx;
  ConnectionManager& mgr = fx.world->rank(0).connections();
  std::vector<std::uint64_t> seen;
  mgr.bind(verbs::Device::kFirstQpNum,
           [&](const verbs::Wc& wc) { seen.push_back(wc.wr_id); });
  for (std::uint64_t i = 0; i < 40; ++i) {
    verbs::Wc wc;
    wc.wr_id = i;
    wc.qp_num = verbs::Device::kFirstQpNum;
    mgr.cq().push(wc);
  }
  fx.engine.run();  // the on-push dispatch event drains the batch
  ASSERT_EQ(seen.size(), 40u);
  for (std::uint64_t i = 0; i < 40; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace partib::mpi
