// Two-sided eager messaging: connection setup, matching order,
// unexpected messages, credits/flow control, and error paths.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "mpi/p2p.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"

namespace partib::mpi {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) & 0xFF);
  }
  return v;
}

struct Fx {
  sim::Engine engine;
  mpi::World world;
  std::vector<std::unique_ptr<P2pEndpoint>> eps;

  explicit Fx(int ranks = 2) : world(engine, make_options(ranks)) {
    for (int i = 0; i < ranks; ++i) {
      eps.push_back(std::make_unique<P2pEndpoint>(world.rank(i)));
    }
  }
  static WorldOptions make_options(int ranks) {
    WorldOptions o;
    o.ranks = ranks;
    return o;
  }
  P2pEndpoint& ep(int i) { return *eps[static_cast<std::size_t>(i)]; }
};

TEST(P2p, BasicSendRecv) {
  Fx fx;
  const auto msg = pattern(1024, 1);
  std::vector<std::byte> out(1024);
  std::size_t got = 0;
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 7, out, [&](std::size_t n) { got = n; })));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 7, msg)));
  fx.engine.run();
  EXPECT_EQ(got, 1024u);
  EXPECT_EQ(out, msg);
}

TEST(P2p, SendBeforeRecvGoesUnexpected) {
  Fx fx;
  const auto msg = pattern(256, 2);
  ASSERT_TRUE(ok(fx.ep(0).send(1, 3, msg)));
  fx.engine.run();
  EXPECT_EQ(fx.ep(1).unexpected_count(), 1u);
  std::vector<std::byte> out(256);
  std::size_t got = 0;
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 3, out, [&](std::size_t n) { got = n; })));
  fx.engine.run();
  EXPECT_EQ(got, 256u);
  EXPECT_EQ(out, msg);
  EXPECT_EQ(fx.ep(1).unexpected_count(), 0u);
}

TEST(P2p, HigherRankCanInitiate) {
  // Rank 1 sends first: the connect poke makes rank 0 dial.
  Fx fx;
  const auto msg = pattern(128, 3);
  std::vector<std::byte> out(128);
  std::size_t got = 0;
  ASSERT_TRUE(ok(fx.ep(0).recv(1, 0, out, [&](std::size_t n) { got = n; })));
  ASSERT_TRUE(ok(fx.ep(1).send(0, 0, msg)));
  fx.engine.run();
  EXPECT_EQ(got, 128u);
  EXPECT_EQ(out, msg);
}

TEST(P2p, SimultaneousBidirectionalSends) {
  Fx fx;
  const auto a = pattern(512, 4);
  const auto b = pattern(512, 5);
  std::vector<std::byte> out_a(512), out_b(512);
  int done = 0;
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 1, out_a, [&](std::size_t) { ++done; })));
  ASSERT_TRUE(ok(fx.ep(0).recv(1, 1, out_b, [&](std::size_t) { ++done; })));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 1, a)));
  ASSERT_TRUE(ok(fx.ep(1).send(0, 1, b)));
  fx.engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(out_a, a);
  EXPECT_EQ(out_b, b);
}

TEST(P2p, SameTagMatchesInOrder) {
  Fx fx;
  std::vector<std::byte> out1(64), out2(64);
  std::vector<int> order;
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 9, out1, [&](std::size_t) {
    order.push_back(1);
  })));
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 9, out2, [&](std::size_t) {
    order.push_back(2);
  })));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 9, pattern(64, 10))));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 9, pattern(64, 20))));
  fx.engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(out1, pattern(64, 10));
  EXPECT_EQ(out2, pattern(64, 20));
}

TEST(P2p, DifferentTagsRouteIndependently) {
  Fx fx;
  std::vector<std::byte> out_a(64), out_b(64);
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 5, out_a, [](std::size_t) {})));
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 6, out_b, [](std::size_t) {})));
  // Send in the *opposite* tag order.
  ASSERT_TRUE(ok(fx.ep(0).send(1, 6, pattern(64, 66))));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 5, pattern(64, 55))));
  fx.engine.run();
  EXPECT_EQ(out_a, pattern(64, 55));
  EXPECT_EQ(out_b, pattern(64, 66));
}

TEST(P2p, BurstBeyondCreditsStillDeliversAll) {
  // More sends than the receiver's slot count: the credit protocol must
  // pace them without RNR failures.
  Fx fx;
  constexpr int kMessages =
      static_cast<int>(P2pEndpoint::kRecvSlotsPerPeer) * 3;
  int received = 0;
  std::vector<std::vector<std::byte>> outs(
      kMessages, std::vector<std::byte>(128));
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(ok(fx.ep(1).recv(0, 1, outs[static_cast<std::size_t>(i)],
                                 [&](std::size_t) { ++received; })));
  }
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(ok(fx.ep(0).send(1, 1, pattern(128, i))));
  }
  fx.engine.run();
  EXPECT_EQ(received, kMessages);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(outs[static_cast<std::size_t>(i)], pattern(128, i)) << i;
  }
  EXPECT_EQ(fx.ep(0).sends_completed(),
            static_cast<std::uint64_t>(kMessages));
}

TEST(P2p, SenderBufferReusableImmediately) {
  Fx fx;
  std::vector<std::byte> msg = pattern(64, 1);
  std::vector<std::byte> out(64);
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 0, out, [](std::size_t) {})));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 0, msg)));
  // Clobber the source before the wire moves anything.
  std::fill(msg.begin(), msg.end(), std::byte{0xFF});
  fx.engine.run();
  EXPECT_EQ(out, pattern(64, 1));
}

TEST(P2p, ZeroByteMessage) {
  Fx fx;
  std::vector<std::byte> out;
  std::size_t got = 99;
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 0, out, [&](std::size_t n) { got = n; })));
  ASSERT_TRUE(ok(fx.ep(0).send(1, 0, {})));
  fx.engine.run();
  EXPECT_EQ(got, 0u);
}

TEST(P2p, OversizedMessageRejected) {
  Fx fx;
  std::vector<std::byte> big(P2pEndpoint::kEagerLimit + 1);
  EXPECT_EQ(fx.ep(0).send(1, 0, big), Status::kResourceExhausted);
}

TEST(P2p, InvalidArgsRejected) {
  Fx fx;
  std::vector<std::byte> buf(16);
  EXPECT_EQ(fx.ep(0).send(0, 0, buf), Status::kInvalidArgument);  // self
  EXPECT_EQ(fx.ep(0).send(9, 0, buf), Status::kInvalidArgument);
  EXPECT_EQ(fx.ep(0).send(1, -1, buf), Status::kInvalidArgument);
  EXPECT_EQ(fx.ep(0).recv(0, 0, buf, [](std::size_t) {}),
            Status::kInvalidArgument);  // self
  EXPECT_EQ(fx.ep(0).recv(-1, 0, buf, [](std::size_t) {}),
            Status::kInvalidArgument);  // wildcard-ish
}

TEST(P2p, ManyPeersFromOneEndpoint) {
  Fx fx(5);
  int received = 0;
  std::vector<std::vector<std::byte>> outs(5, std::vector<std::byte>(64));
  for (int peer = 1; peer < 5; ++peer) {
    ASSERT_TRUE(ok(fx.ep(peer).recv(0, 0, outs[static_cast<std::size_t>(peer)],
                                    [&](std::size_t) { ++received; })));
    ASSERT_TRUE(ok(fx.ep(0).send(peer, 0, pattern(64, peer))));
  }
  fx.engine.run();
  EXPECT_EQ(received, 4);
  for (int peer = 1; peer < 5; ++peer) {
    EXPECT_EQ(outs[static_cast<std::size_t>(peer)], pattern(64, peer));
  }
}

TEST(P2p, PingPongLatencyIsSymmetric) {
  Fx fx;
  std::vector<std::byte> ping = pattern(8, 1), pong(8);
  Time t_send = -1, t_reply = -1;
  ASSERT_TRUE(ok(fx.ep(1).recv(0, 0, pong, [&](std::size_t) {
    ASSERT_TRUE(ok(fx.ep(1).send(0, 1, pong)));
  })));
  std::vector<std::byte> back(8);
  ASSERT_TRUE(ok(fx.ep(0).recv(1, 1, back, [&](std::size_t) {
    t_reply = fx.engine.now();
  })));
  t_send = fx.engine.now();
  ASSERT_TRUE(ok(fx.ep(0).send(1, 0, ping)));
  fx.engine.run();
  ASSERT_GE(t_reply, 0);
  // Round trip takes at least two wire latencies.
  EXPECT_GE(t_reply - t_send,
            2 * fx.world.options().nic.wire.L);
  EXPECT_EQ(back, ping);
}

}  // namespace
}  // namespace partib::mpi
