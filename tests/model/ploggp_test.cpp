// The PLogGP model and optimizer — including the reproduction of the
// paper's Table I, the headline analytic result the aggregators rely on.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/units.hpp"
#include "model/loggp.hpp"
#include "model/ploggp.hpp"

namespace partib::model {
namespace {

LogGPParams simple_params() {
  LogGPParams p;
  p.L = 1000;
  p.o_s = 100;
  p.o_r = 200;
  p.g = 500;
  p.G = 0.1;
  return p;
}

TEST(LogGP, PerMessageCostIsMaxOfGapAndOverheads) {
  LogGPParams p = simple_params();
  EXPECT_EQ(p.per_message_cost(), 500);
  p.o_s = 900;
  EXPECT_EQ(p.per_message_cost(), 900);
  p.o_r = 1200;
  EXPECT_EQ(p.per_message_cost(), 1200);
}

TEST(PLogGP, Fig2FormulaForTwoMessages) {
  // The paper's Fig 2: o_s + 2G(k-1) + max(g, o_s, o_r) + L + o_r.
  const LogGPParams p = simple_params();
  const std::size_t k = 1001;
  const Duration expected = 100 + 2 * static_cast<Duration>(0.1 * 1000) +
                            500 + 1000 + 200;
  EXPECT_EQ(back_to_back_time(p, k, 2), expected);
}

TEST(PLogGP, SingleMessageIsClassicLogGP) {
  const LogGPParams p = simple_params();
  // o_s + G(k-1) + L + o_r
  EXPECT_EQ(single_message_time(p, 1), 100 + 0 + 1000 + 200);
  EXPECT_EQ(single_message_time(p, 10'001),
            100 + static_cast<Duration>(0.1 * 10'000) + 1000 + 200);
}

TEST(PLogGP, BackToBackGrowsLinearlyInMessages) {
  const LogGPParams p = simple_params();
  const Duration t2 = back_to_back_time(p, 1024, 2);
  const Duration t3 = back_to_back_time(p, 1024, 3);
  const Duration t4 = back_to_back_time(p, 1024, 4);
  EXPECT_EQ(t3 - t2, t4 - t3);
  EXPECT_GT(t3, t2);
}

TEST(PLogGP, CompletionTimeIncludesDelay) {
  const LogGPParams p = simple_params();
  const PLogGPQuery q{1 * MiB, 1, msec(4)};
  const PLogGPQuery q0{1 * MiB, 1, 0};
  EXPECT_EQ(completion_time(p, q) - completion_time(p, q0), msec(4));
}

TEST(PLogGP, MorePartitionsShrinkLaggardWireTime) {
  const LogGPParams p = simple_params();
  // With zero per-message cost the laggard's k/P wire term dominates.
  LogGPParams cheap = p;
  cheap.g = cheap.o_s = cheap.o_r = 0;
  const Duration t1 = completion_time(cheap, {16 * MiB, 1, msec(4)});
  const Duration t16 = completion_time(cheap, {16 * MiB, 16, msec(4)});
  EXPECT_GT(t1, t16);
}

TEST(PLogGP, PerMessageCostPenalisesManyPartitionsForSmallMessages) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  const Duration t1 = completion_time(p, {4 * KiB, 1, msec(4)});
  const Duration t32 = completion_time(p, {4 * KiB, 32, msec(4)});
  EXPECT_LT(t1, t32);  // Fig 3's small-message regime
}

TEST(PLogGP, LargeMessagesFavourManyPartitions) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  const Duration t1 = completion_time(p, {256 * MiB, 1, msec(4)});
  const Duration t32 = completion_time(p, {256 * MiB, 32, msec(4)});
  EXPECT_GT(t1, t32);  // Fig 3's large-message regime
}

TEST(PLogGP, DrainAwareModelNeverFasterThanHeadline) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  for (std::size_t bytes : pow2_sizes(1 * KiB, 256 * MiB)) {
    for (std::size_t P : {1u, 2u, 8u, 32u}) {
      if (bytes < P) continue;
      const PLogGPQuery q{bytes, P, msec(4)};
      EXPECT_GE(completion_time_with_drain(p, q), completion_time(p, q))
          << bytes << " " << P;
    }
  }
}

TEST(PLogGP, DrainTermKicksInForHugeMessages) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  // 512 MiB at 32 partitions: the 31 early partitions cannot be injected
  // within 4 ms, so the refined model is strictly slower.
  const PLogGPQuery q{512 * MiB, 32, msec(4)};
  EXPECT_GT(completion_time_with_drain(p, q), completion_time(p, q));
}

// --- Table I ----------------------------------------------------------------

TEST(Optimizer, ReproducesPaperTableI) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  const OptimizerConfig cfg;  // 4 ms delay, cap 32
  struct Row {
    std::size_t bytes;
    std::size_t expected_tp;
  };
  // The exact rows of the paper's Table I.
  const Row rows[] = {
      {64 * KiB, 1},  {128 * KiB, 1}, {256 * KiB, 1},
      {512 * KiB, 2}, {1 * MiB, 2},
      {2 * MiB, 4},   {4 * MiB, 4},
      {8 * MiB, 8},   {16 * MiB, 8},
      {32 * MiB, 16}, {64 * MiB, 16},
      {128 * MiB, 32}, {256 * MiB, 32},
  };
  for (const Row& row : rows) {
    EXPECT_EQ(optimal_transport_partitions(p, row.bytes, 32, cfg),
              row.expected_tp)
        << "at " << format_bytes(row.bytes);
  }
}

TEST(Optimizer, NeverExceedsUserPartitions) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  EXPECT_LE(optimal_transport_partitions(p, 256 * MiB, 4), 4u);
  EXPECT_LE(optimal_transport_partitions(p, 256 * MiB, 1), 1u);
}

TEST(Optimizer, RespectsConfiguredCap) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  OptimizerConfig cfg;
  cfg.max_transport_partitions = 8;
  EXPECT_LE(optimal_transport_partitions(p, 256 * MiB, 128, cfg), 8u);
}

TEST(Optimizer, MonotoneNonDecreasingInMessageSize) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  std::size_t prev = 1;
  for (std::size_t bytes : pow2_sizes(1 * KiB, 512 * MiB)) {
    const std::size_t tp = optimal_transport_partitions(p, bytes, 128);
    EXPECT_GE(tp, prev) << format_bytes(bytes);
    prev = tp;
  }
}

TEST(Optimizer, ResultAlwaysPowerOfTwo) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  for (std::size_t bytes : pow2_sizes(1 * KiB, 256 * MiB)) {
    const std::size_t tp = optimal_transport_partitions(p, bytes, 64);
    EXPECT_TRUE(is_pow2(tp)) << tp;
  }
}

TEST(Optimizer, ZeroDelayStillAggregatesSmallMessages) {
  // Without a laggard the per-message overhead dominates everywhere, so
  // the optimizer should keep one transport partition.
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  OptimizerConfig cfg;
  cfg.delay = 0;
  EXPECT_EQ(optimal_transport_partitions(p, 64 * KiB, 32, cfg), 1u);
}

TEST(Optimizer, TinyMessageCannotSplitBelowOneByte) {
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  EXPECT_EQ(optimal_transport_partitions(p, 2, 4), 1u);
}

TEST(Optimizer, ThresholdScalingFollowsSqrtLaw) {
  // The analytic optimum is P* = sqrt(K*G/c): quadrupling the message
  // size should double the chosen partition count deep in the scaling
  // regime.
  const LogGPParams p = LogGPParams::niagara_mpi_measured();
  const std::size_t tp_a = optimal_transport_partitions(p, 8 * MiB, 1024);
  const std::size_t tp_b = optimal_transport_partitions(p, 32 * MiB, 1024);
  EXPECT_EQ(tp_b, 2 * tp_a);
}

}  // namespace
}  // namespace partib::model
