// Arrival-vector planner and per-partition EWMA profile: the model half
// of online arrival-learning aggregation (docs/ADAPTIVE.md).  These pin
// the properties the sender's Start-time replan leans on: determinism,
// contiguous cover, quantization invariance, the delta controller's
// window math and clamps, bounded EWMA reaction to regime shifts, and
// the no-flap property of the hysteresis comparison.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "model/arrival_plan.hpp"
#include "model/loggp.hpp"
#include "part/arrival_profile.hpp"

namespace partib::test {
namespace {

constexpr std::size_t kParts = 64;
constexpr std::size_t kBytes = 64 * MiB;

struct PlanOut {
  model::ArrivalPlanResult r;
  std::size_t first[kParts];
  std::size_t count[kParts];
};

PlanOut plan(const std::vector<Duration>& arrival,
             const model::ArrivalLearnConfig& cfg = {}) {
  const auto p = model::LogGPParams::niagara_mpi_measured();
  model::ArrivalPlanScratch scratch;
  scratch.reserve(arrival.size());
  PlanOut out;
  out.r = model::plan_from_arrivals(p, kBytes, arrival.data(),
                                    arrival.size(), cfg, out.first,
                                    out.count, scratch);
  return out;
}

std::vector<Duration> ramp(std::size_t n, Duration spread) {
  std::vector<Duration> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = (spread * static_cast<Duration>(i)) /
           static_cast<Duration>(n - 1);
  }
  return a;
}

std::vector<Duration> bursty(std::size_t n, Duration spread) {
  std::vector<Duration> a(n);
  const std::size_t head = n - n / 8;
  for (std::size_t i = 0; i < head; ++i) {
    a[i] = (usec(120) * static_cast<Duration>(i)) /
           static_cast<Duration>(head - 1);
  }
  for (std::size_t i = head; i < n; ++i) {
    a[i] = spread + (usec(600) * static_cast<Duration>(i - head)) /
                        static_cast<Duration>(n - head - 1);
  }
  return a;
}

void expect_contiguous_cover(const PlanOut& out, std::size_t n,
                             std::size_t cap) {
  ASSERT_GE(out.r.groups, 1u);
  EXPECT_LE(out.r.groups, cap);
  std::size_t next = 0;
  for (std::size_t g = 0; g < out.r.groups; ++g) {
    EXPECT_EQ(out.first[g], next);
    EXPECT_GE(out.count[g], 1u);
    next += out.count[g];
  }
  EXPECT_EQ(next, n);
}

TEST(ArrivalPlan, DeterministicAndSelfConsistent) {
  const auto arrival = bursty(kParts, msec(5));
  const PlanOut a = plan(arrival);
  const PlanOut b = plan(arrival);
  EXPECT_EQ(a.r.groups, b.r.groups);
  EXPECT_EQ(a.r.delta, b.r.delta);
  EXPECT_EQ(a.r.predicted, b.r.predicted);
  for (std::size_t g = 0; g < a.r.groups; ++g) {
    EXPECT_EQ(a.first[g], b.first[g]);
    EXPECT_EQ(a.count[g], b.count[g]);
  }
  // The returned prediction is the same model re-run on the returned
  // layout — the planner's choice and the sender's hysteresis compare
  // must agree on what a plan costs.
  const auto p = model::LogGPParams::niagara_mpi_measured();
  model::ArrivalPlanScratch scratch;
  scratch.reserve(kParts);
  EXPECT_EQ(model::predict_grouped_completion(p, kBytes / kParts,
                                              arrival.data(), a.first,
                                              a.count, a.r.groups, a.r.delta,
                                              scratch),
            a.r.predicted);
}

TEST(ArrivalPlan, ContiguousCoverAcrossShapes) {
  const model::ArrivalLearnConfig cfg;
  for (const auto& arrival :
       {ramp(kParts, msec(6)), ramp(kParts, usec(3)), bursty(kParts, msec(5)),
        ramp(kParts, 0)}) {
    expect_contiguous_cover(plan(arrival, cfg), kParts, cfg.max_groups);
  }
  // Degenerate sizes: one partition, and fewer partitions than the cap.
  expect_contiguous_cover(plan(ramp(1, 0), cfg), 1, cfg.max_groups);
  expect_contiguous_cover(plan(ramp(3, msec(2)), cfg), 3, cfg.max_groups);
}

TEST(ArrivalPlan, SubQuantumJitterNeverChangesThePlan) {
  // Plans are a function of the quantized pattern: nudging every arrival
  // by less than one grid step must reproduce the identical layout —
  // this is what makes learned plans producer-thread-count invariant.
  model::ArrivalLearnConfig cfg;
  cfg.quantum = usec(64);
  const auto base = bursty(kParts, msec(5));
  const PlanOut a = plan(base, cfg);
  auto jittered = base;
  for (std::size_t i = 0; i < kParts; ++i) {
    // Stay inside the arrival's own grid cell, not just within a quantum.
    const Duration cell = (base[i] / cfg.quantum) * cfg.quantum;
    jittered[i] = cell + (static_cast<Duration>(i * 977) % cfg.quantum);
  }
  const PlanOut b = plan(jittered, cfg);
  EXPECT_EQ(a.r.groups, b.r.groups);
  EXPECT_EQ(a.r.delta, b.r.delta);
  for (std::size_t g = 0; g < a.r.groups; ++g) {
    EXPECT_EQ(a.first[g], b.first[g]);
    EXPECT_EQ(a.count[g], b.count[g]);
  }
}

TEST(ArrivalPlan, BurstyTailGetsABoundaryAtTheCluster) {
  // 56 early partitions, 8 stragglers 5 ms later: the layout must not
  // make any group straddle the jump — a group containing both index 55
  // and 56 would hold its early members hostage to the tail.
  const PlanOut out = plan(bursty(kParts, msec(5)));
  bool boundary_at_56 = false;
  for (std::size_t g = 0; g < out.r.groups; ++g) {
    EXPECT_FALSE(out.first[g] < 56 && out.first[g] + out.count[g] > 56);
    if (out.first[g] == 56) boundary_at_56 = true;
  }
  EXPECT_TRUE(boundary_at_56);
  EXPECT_GT(out.r.groups, 1u);
}

TEST(ArrivalPlan, DeltaIsWorstIntraGroupSpreadPlusQuantumClamped) {
  model::ArrivalLearnConfig cfg;
  cfg.max_groups = 1;  // single group: delta must cover the whole spread
  const Duration spread = msec(3);
  const PlanOut one = plan(ramp(kParts, spread), cfg);
  ASSERT_EQ(one.r.groups, 1u);
  const Duration spread_q =
      model::quantize_arrival(spread, cfg.quantum) -
      model::quantize_arrival(Duration{0}, cfg.quantum);
  EXPECT_EQ(one.r.delta, spread_q + cfg.quantum);

  // Clamps, both ends.  A simultaneous burst wants quantum-sized delta;
  // raising delta_min above the quantum must floor it there.
  model::ArrivalLearnConfig floor_cfg = cfg;
  floor_cfg.delta_min = usec(200);
  ASSERT_GT(floor_cfg.delta_min, floor_cfg.quantum);
  const PlanOut tight = plan(ramp(kParts, 0), floor_cfg);
  EXPECT_EQ(tight.r.delta, floor_cfg.delta_min);
  // A huge forced-single-group spread ceilings at delta_max.
  const PlanOut wide = plan(ramp(kParts, msec(200)), cfg);
  EXPECT_EQ(wide.r.delta, cfg.delta_max);
}

TEST(ArrivalPlan, StationaryVectorCannotFlap) {
  // The hysteresis contract's no-flap half: re-planning from the same
  // profile yields the same layout and the same predicted cost, so the
  // candidate is never *strictly* better than the incumbent it equals —
  // any epsilon >= 0 keeps the standing plan.
  const auto arrival = bursty(kParts, msec(5));
  const PlanOut incumbent = plan(arrival);
  const PlanOut candidate = plan(arrival);
  EXPECT_EQ(candidate.r.predicted, incumbent.r.predicted);
  EXPECT_FALSE(static_cast<double>(candidate.r.predicted) <
               static_cast<double>(incumbent.r.predicted) * (1.0 - 0.0));
}

TEST(ArrivalProfile, EwmaConvergesToQuantizedTruth) {
  model::ArrivalLearnConfig cfg;
  cfg.ewma_alpha = 0.25;
  part::ArrivalProfile prof;
  prof.init(kParts, cfg);
  const auto truth = bursty(kParts, msec(5));
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t i = 0; i < kParts; ++i) {
      prof.record(i, Time{1000000} + truth[i]);
    }
    prof.fold();
  }
  EXPECT_EQ(prof.epochs(), 8u);
  for (std::size_t i = 0; i < kParts; ++i) {
    // First epoch seeds the EWMA directly, later identical epochs keep
    // it fixed: convergence is exact, not asymptotic.
    EXPECT_EQ(prof.predicted()[i],
              model::quantize_arrival(truth[i], cfg.quantum))
        << i;
  }
}

TEST(ArrivalProfile, RegimeShiftReactionIsBoundedByAlpha) {
  model::ArrivalLearnConfig cfg;
  cfg.ewma_alpha = 0.5;
  part::ArrivalProfile prof;
  prof.init(kParts, cfg);
  const auto old_truth = ramp(kParts, msec(2));
  const auto new_truth = ramp(kParts, msec(8));
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t i = 0; i < kParts; ++i) {
      prof.record(i, Time{500} + old_truth[i]);
    }
    prof.fold();
  }
  // One epoch of the new regime moves each estimate exactly alpha of the
  // way — bounded reaction, no overshoot past the new observation.
  for (std::size_t i = 0; i < kParts; ++i) {
    prof.record(i, Time{500} + new_truth[i]);
  }
  prof.fold();
  for (std::size_t i = 0; i < kParts; ++i) {
    const auto oldq = static_cast<double>(
        model::quantize_arrival(old_truth[i], cfg.quantum));
    const auto newq = static_cast<double>(
        model::quantize_arrival(new_truth[i], cfg.quantum));
    const auto got = static_cast<double>(prof.predicted()[i]);
    EXPECT_NEAR(got, 0.5 * oldq + 0.5 * newq, 1.0) << i;
    EXPECT_LE(got, std::max(oldq, newq)) << i;
    EXPECT_GE(got, std::min(oldq, newq)) << i;
  }
  // And it keeps closing geometrically: eight more epochs shrink the
  // residual to 0.5^9 of the regime jump — inside one quantum.
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t i = 0; i < kParts; ++i) {
      prof.record(i, Time{500} + new_truth[i]);
    }
    prof.fold();
  }
  for (std::size_t i = 0; i < kParts; ++i) {
    const auto newq = static_cast<double>(
        model::quantize_arrival(new_truth[i], cfg.quantum));
    EXPECT_NEAR(static_cast<double>(prof.predicted()[i]), newq,
                static_cast<double>(cfg.quantum))
        << i;
  }
}

TEST(ArrivalProfile, SeedOverwritesAndDiscardsInFlightEpoch) {
  model::ArrivalLearnConfig cfg;
  part::ArrivalProfile prof;
  prof.init(kParts, cfg);
  // Half-record an epoch, then seed: the partial records must not leak
  // into the seeded state at the next fold.
  for (std::size_t i = 0; i < kParts / 2; ++i) {
    prof.record(i, Time{123} + msec(9));
  }
  const auto truth = ramp(kParts, msec(3));
  prof.seed(truth.data(), kParts);
  EXPECT_GE(prof.epochs(), 1u);
  for (std::size_t i = 0; i < kParts; ++i) {
    EXPECT_EQ(prof.predicted()[i], truth[i]) << i;
  }
  prof.fold();  // no-op: the interrupted epoch was discarded
  for (std::size_t i = 0; i < kParts; ++i) {
    EXPECT_EQ(prof.predicted()[i], truth[i]) << i;
  }
}

}  // namespace
}  // namespace partib::test
