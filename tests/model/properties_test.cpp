// Parameterized property sweeps over the analytic models: invariants that
// must hold for any parameter set, not just the calibrated defaults.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bits.hpp"
#include "common/units.hpp"
#include "model/loggp.hpp"
#include "model/ploggp.hpp"

namespace partib::model {
namespace {

using ParamCase = std::tuple<int /*g_us*/, int /*G_centi_ns*/>;

class ModelProperties : public ::testing::TestWithParam<ParamCase> {
 protected:
  LogGPParams params() const {
    LogGPParams p;
    p.L = usec(2);
    p.o_s = nsec(800);
    p.o_r = nsec(900);
    p.g = usec(std::get<0>(GetParam()));
    p.G = std::get<1>(GetParam()) / 100.0;
    return p;
  }
};

TEST_P(ModelProperties, CompletionTimeMonotoneInMessageSize) {
  const LogGPParams p = params();
  for (std::size_t P : {1u, 4u, 16u}) {
    Duration prev = 0;
    for (std::size_t bytes : pow2_sizes(1 * KiB, 64 * MiB)) {
      const Duration t = completion_time(p, {bytes, P, msec(1)});
      EXPECT_GE(t, prev) << bytes << " P=" << P;
      prev = t;
    }
  }
}

TEST_P(ModelProperties, CompletionTimeMonotoneInDelay) {
  const LogGPParams p = params();
  Duration prev = 0;
  for (Duration d : {usec(0), usec(10), usec(100), msec(1), msec(10)}) {
    const Duration t = completion_time(p, {4 * MiB, 8, d});
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(ModelProperties, OptimizerMonotoneInSize) {
  const LogGPParams p = params();
  std::size_t prev = 1;
  for (std::size_t bytes : pow2_sizes(1 * KiB, 256 * MiB)) {
    const std::size_t tp = optimal_transport_partitions(p, bytes, 256);
    EXPECT_GE(tp, prev) << bytes;
    EXPECT_TRUE(is_pow2(tp));
    prev = tp;
  }
}

TEST_P(ModelProperties, OptimizerPicksTrueArgmin) {
  const LogGPParams p = params();
  OptimizerConfig cfg;
  for (std::size_t bytes : {256 * KiB, 8 * MiB, 128 * MiB}) {
    const std::size_t best = optimal_transport_partitions(p, bytes, 64, cfg);
    const Duration t_best = completion_time(p, {bytes, best, cfg.delay});
    for (std::size_t P = 1; P <= 32; P *= 2) {
      EXPECT_LE(t_best, completion_time(p, {bytes, P, cfg.delay}))
          << bytes << " challenger P=" << P;
    }
  }
}

TEST_P(ModelProperties, DrainModelDominatesHeadline) {
  const LogGPParams p = params();
  for (std::size_t bytes : pow2_sizes(1 * KiB, 64 * MiB)) {
    for (std::size_t P : {1u, 8u, 32u}) {
      if (bytes < P) continue;
      const PLogGPQuery q{bytes, P, usec(50)};
      EXPECT_GE(completion_time_with_drain(p, q), completion_time(p, q));
    }
  }
}

TEST_P(ModelProperties, BackToBackSuperAdditive) {
  // m messages back to back never beat m separate ideal messages minus
  // shared latency (the gap term must cost something).
  const LogGPParams p = params();
  const Duration t1 = single_message_time(p, 4 * KiB);
  const Duration t4 = back_to_back_time(p, 4 * KiB, 4);
  EXPECT_GE(t4, t1 + 3 * p.per_message_cost());
}

INSTANTIATE_TEST_SUITE_P(
    GapBandwidthGrid, ModelProperties,
    ::testing::Combine(::testing::Values(1, 5, 15, 40),   // g in us
                       ::testing::Values(4, 8, 33, 80)),  // G in ns/B * 100
    [](const ::testing::TestParamInfo<ParamCase>& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "us_G" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace partib::model
