// Cross-backend test scaffolding.
//
// The conformance strategy (docs/BACKENDS.md): the verbs/part lifecycle
// suites are value-parameterized over backend names, each test body runs
// unchanged against every registered conformance backend, and the fixture
// (here, or ChannelFixture in test_world.hpp) consults
// current_backend() when it constructs the world.  A suite opts in with
//
//   using MySuite = partib::test::BackendTest;        // or a subclass
//   TEST_P(MySuite, DoesTheThing) { ... }
//   PARTIB_INSTANTIATE_BACKENDS(MySuite);
//
// which yields Backends/MySuite.DoesTheThing/des and .../shm instances —
// the `-R 'Backends/'` selector CI's backend-conformance job runs.
//
// Driving rule: test bodies must drive through Fx::drive() (or
// ChannelFixture::drive()), never engine.run() directly — on the DES
// backend drive() IS engine.run(); on real-time backends it is the
// backend's progress pump and engine.run() would tear through pending
// timers without letting real time pass.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backend/backend.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "support/backend_select.hpp"
#include "verbs/verbs.hpp"

namespace partib::test {

/// Value-parameterized base: selects the named backend for the test's
/// duration.  Subclass or alias per suite name.
class BackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { current_backend() = GetParam(); }
  void TearDown() override { current_backend() = "des"; }

  /// True on the deterministic oracle — for assertions about exact
  /// virtual timing that real-time backends cannot promise.
  bool des() const { return GetParam() == "des"; }
};

#define PARTIB_INSTANTIATE_BACKENDS(Suite)                                  \
  INSTANTIATE_TEST_SUITE_P(                                                 \
      Backends, Suite,                                                      \
      ::testing::ValuesIn(::partib::test::conformance_backends()),          \
      [](const ::testing::TestParamInfo<std::string>& info) {               \
        return info.param;                                                  \
      })

/// Two-node verbs harness over the selected backend: the cross-backend
/// twin of the old per-file Fx structs in tests/verbs/.
struct BackendVerbsFx {
  std::unique_ptr<backend::Backend> be;
  backend::Transport& fab;
  verbs::Device dev;
  verbs::Context* sctx;
  verbs::Context* rctx;
  verbs::Pd* spd;
  verbs::Pd* rpd;
  verbs::Cq* scq;
  verbs::Cq* rcq;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  verbs::Mr* smr;
  verbs::Mr* rmr;

  static backend::Backend& checked(std::unique_ptr<backend::Backend>& be) {
    PARTIB_ASSERT(be != nullptr);
    return *be;
  }

  explicit BackendVerbsFx(backend::Config cfg = {})
      : be(backend::make_backend(current_backend(), cfg)),
        fab(checked(be).transport()),
        dev(fab),
        sbuf(64 * KiB),
        rbuf(64 * KiB) {
    sctx = &dev.open(fab.add_node());
    rctx = &dev.open(fab.add_node());
    spd = &sctx->alloc_pd();
    rpd = &rctx->alloc_pd();
    scq = &sctx->create_cq(1024);
    rcq = &rctx->create_cq(1024);
    smr = &spd->register_mr(sbuf, verbs::kLocalRead);
    rmr = &rpd->register_mr(rbuf, verbs::kLocalWrite | verbs::kRemoteWrite);
  }

  /// Drive to quiescence (DES: engine.run(); shm: real-time pump).
  void drive() { be->run_until_idle(); }

  std::pair<verbs::Qp*, verbs::Qp*> connected_pair(verbs::QpCaps caps = {},
                                                   verbs::Srq* srq = nullptr) {
    verbs::Qp& s = spd->create_qp(*scq, *scq, caps);
    verbs::Qp& r = rpd->create_qp(*rcq, *rcq, caps, srq);
    EXPECT_TRUE(ok(s.to_init()));
    EXPECT_TRUE(ok(r.to_init()));
    EXPECT_TRUE(ok(s.to_rtr(r.qp_num())));
    EXPECT_TRUE(ok(r.to_rtr(s.qp_num())));
    EXPECT_TRUE(ok(s.to_rts()));
    EXPECT_TRUE(ok(r.to_rts()));
    return {&s, &r};
  }

  verbs::SendWr write_wr(std::size_t bytes, std::uint32_t imm = 0,
                         bool with_imm = true, std::uint64_t wr_id = 77) {
    verbs::SendWr wr;
    wr.wr_id = wr_id;
    wr.opcode =
        with_imm ? verbs::Opcode::kRdmaWriteWithImm : verbs::Opcode::kRdmaWrite;
    wr.sg_list.push_back(
        verbs::Sge{reinterpret_cast<std::uint64_t>(sbuf.data()),
                   static_cast<std::uint32_t>(bytes), smr->lkey()});
    wr.imm = imm;
    wr.remote_addr = rmr->addr();
    wr.rkey = rmr->rkey();
    return wr;
  }

  std::vector<verbs::Wc> drain(verbs::Cq& cq) {
    std::vector<verbs::Wc> out;
    verbs::Wc wcs[8];
    int n;
    while ((n = cq.poll(std::span<verbs::Wc>(wcs))) > 0) {
      out.insert(out.end(), wcs, wcs + n);
    }
    return out;
  }
};

}  // namespace partib::test
