// Reference max-min fluid network: the original std::map-based
// implementation that src/fabric/fluid_network.cpp replaced with an
// allocation-free layout.
//
// Like tests/support/reference_engine.hpp, this is a verbatim copy (modulo
// naming and header-only inlining) kept as a differential oracle:
// tests/fabric/fluid_conservation_test.cpp submits identical randomized
// workloads to both implementations and requires byte-identical completion
// times.  Do not optimise this file — its job is to stay the obviously
// correct specification of the fluid model.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "sim/engine.hpp"

namespace partib::test {

class ReferenceFluidNetwork {
 public:
  using NodeId = int;
  /// Called when the flow's last byte leaves the wire.
  using Done = std::function<void(Time wire_end)>;

  ReferenceFluidNetwork(sim::Engine& engine, double link_bytes_per_ns)
      : engine_(engine), capacity_(link_bytes_per_ns) {
    PARTIB_ASSERT(capacity_ > 0.0);
  }

  void set_node_count(int n) {
    PARTIB_ASSERT(n >= nodes_);
    nodes_ = n;
  }

  void set_node_capacity(NodeId node, double egress_bytes_per_ns,
                         double ingress_bytes_per_ns) {
    PARTIB_ASSERT(node >= 0 && node < nodes_);
    PARTIB_ASSERT(egress_bytes_per_ns > 0.0 && ingress_bytes_per_ns > 0.0);
    node_caps_[node] = {egress_bytes_per_ns, ingress_bytes_per_ns};
  }

  void submit(NodeId src, NodeId dst, double bytes, double rate_cap,
              Done done) {
    PARTIB_ASSERT(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_);
    PARTIB_ASSERT(bytes >= 0.0 && rate_cap > 0.0);
    if (bytes < kByteEps) {
      engine_.schedule_after(0, [done = std::move(done), this] {
        ++completed_;
        done(engine_.now());
      });
      return;
    }
    if (src == dst) {
      const auto d = static_cast<Duration>(std::ceil(bytes / rate_cap));
      engine_.schedule_after(d, [done = std::move(done), this] {
        ++completed_;
        done(engine_.now());
      });
      return;
    }
    drain_progress();
    flows_.emplace(next_id_++,
                   Flow{src, dst, bytes, rate_cap, 0.0, std::move(done)});
    recompute_rates();
    schedule_next_completion();
  }

  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t completed_flows() const { return completed_; }

 private:
  // Half a byte: below this a flow is considered finished.
  static constexpr double kByteEps = 0.5;

  struct Flow {
    NodeId src;
    NodeId dst;
    double remaining;
    double cap;
    double rate = 0.0;
    Done done;
  };

  sim::Engine& engine_;
  double capacity_;
  int nodes_ = 0;
  std::map<NodeId, std::pair<double, double>> node_caps_;
  std::map<std::uint64_t, Flow> flows_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  Time last_update_ = 0;
  sim::Engine::EventId next_event_{};

  void drain_progress() {
    const Time now = engine_.now();
    const auto elapsed = static_cast<double>(now - last_update_);
    if (elapsed > 0.0) {
      for (auto& [id, f] : flows_) {
        f.remaining = std::max(0.0, f.remaining - f.rate * elapsed);
      }
    }
    last_update_ = now;
  }

  void recompute_rates() {
    // Progressive filling (water-filling): raise all unfrozen flow rates
    // in lockstep; freeze flows at their cap and flows crossing a
    // saturated link.  Each round freezes at least one flow.
    std::vector<double> egress(static_cast<std::size_t>(nodes_), capacity_);
    std::vector<double> ingress(static_cast<std::size_t>(nodes_), capacity_);
    for (const auto& [node, caps] : node_caps_) {
      egress[static_cast<std::size_t>(node)] = caps.first;
      ingress[static_cast<std::size_t>(node)] = caps.second;
    }
    std::vector<Flow*> unfrozen;
    unfrozen.reserve(flows_.size());
    for (auto& [id, f] : flows_) {
      f.rate = 0.0;
      unfrozen.push_back(&f);
    }
    const double eps = capacity_ * 1e-12;

    while (!unfrozen.empty()) {
      std::vector<int> egress_load(static_cast<std::size_t>(nodes_), 0);
      std::vector<int> ingress_load(static_cast<std::size_t>(nodes_), 0);
      for (const Flow* f : unfrozen) {
        ++egress_load[static_cast<std::size_t>(f->src)];
        ++ingress_load[static_cast<std::size_t>(f->dst)];
      }
      double delta = std::numeric_limits<double>::infinity();
      for (const Flow* f : unfrozen) {
        const auto s = static_cast<std::size_t>(f->src);
        const auto d = static_cast<std::size_t>(f->dst);
        delta = std::min(delta, egress[s] / egress_load[s]);
        delta = std::min(delta, ingress[d] / ingress_load[d]);
        delta = std::min(delta, f->cap - f->rate);
      }
      PARTIB_ASSERT(delta >= 0.0 &&
                    delta < std::numeric_limits<double>::infinity());
      for (Flow* f : unfrozen) {
        f->rate += delta;
        egress[static_cast<std::size_t>(f->src)] -= delta;
        ingress[static_cast<std::size_t>(f->dst)] -= delta;
      }
      std::vector<Flow*> still;
      still.reserve(unfrozen.size());
      bool froze_any = false;
      for (Flow* f : unfrozen) {
        const bool capped = f->rate >= f->cap - eps;
        const bool egress_full =
            egress[static_cast<std::size_t>(f->src)] <= eps;
        const bool ingress_full =
            ingress[static_cast<std::size_t>(f->dst)] <= eps;
        if (capped || egress_full || ingress_full) {
          froze_any = true;
        } else {
          still.push_back(f);
        }
      }
      PARTIB_ASSERT_MSG(froze_any, "progressive filling failed to converge");
      unfrozen = std::move(still);
    }
  }

  void schedule_next_completion() {
    if (next_event_.valid()) {
      engine_.cancel(next_event_);
      next_event_ = sim::Engine::EventId{};
    }
    if (flows_.empty()) return;
    double min_finish = std::numeric_limits<double>::infinity();
    for (const auto& [id, f] : flows_) {
      PARTIB_ASSERT(f.rate > 0.0);
      min_finish = std::min(min_finish, f.remaining / f.rate);
    }
    const auto delay = static_cast<Duration>(std::ceil(min_finish));
    next_event_ = engine_.schedule_after(std::max<Duration>(delay, 1),
                                         [this] { on_completion_event(); });
  }

  void on_completion_event() {
    next_event_ = sim::Engine::EventId{};
    drain_progress();
    // Collect finished flows first: Done callbacks may submit new flows.
    std::vector<Done> finished;
    std::vector<Time> ends;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.remaining <= kByteEps) {
        finished.push_back(std::move(it->second.done));
        ends.push_back(engine_.now());
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    if (!flows_.empty()) {
      recompute_rates();
    }
    schedule_next_completion();
    for (std::size_t i = 0; i < finished.size(); ++i) {
      ++completed_;
      finished[i](ends[i]);
    }
  }
};

}  // namespace partib::test
