// Verbatim copy of the seed's byte-scan run flush
// (PsendRequest::flush_group_runs before the bitmap rewrite), kept as the
// differential-test oracle for part::flush_pending_runs.  The (first,
// count) sequence this loop emits is what each figure fingerprint was
// recorded against — one WR post per emitted run, in this order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace partib::test {

/// One byte per partition, exactly like the seed's `arrived_` / `sent_`
/// vectors.  Emits fn(first, count) for every maximal pending run inside
/// [base, base + group_size), marking it sent.
template <typename Fn>
void reference_flush_runs(const std::vector<std::uint8_t>& arrived,
                          std::vector<std::uint8_t>& sent, std::size_t base,
                          std::size_t group_size, Fn&& fn) {
  std::size_t i = 0;
  while (i < group_size) {
    if (!arrived[base + i] || sent[base + i]) {
      ++i;
      continue;
    }
    std::size_t len = 0;
    while (i + len < group_size && arrived[base + i + len] &&
           !sent[base + i + len]) {
      sent[base + i + len] = 1;
      ++len;
    }
    fn(base + i, len);
    i += len;
  }
}

}  // namespace partib::test
