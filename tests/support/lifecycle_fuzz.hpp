// Property-based lifecycle fuzzing under fault injection.
//
// One trial = one seed.  The seed derives everything: channel geometry,
// aggregator options, the retry budget, the fault-plan shape and rates,
// and the randomized pready/parrived/start/wait interleaving.  A trial
// runs the channel to quiescence and checks the three lifecycle
// invariants from docs/FAULTS.md:
//
//   1. no lost completions — every started round ends with test() true on
//      both sides, whether it succeeded or surfaced a structured error;
//   2. exact bytes on success — whenever neither side reports failure,
//      the received buffer matches the sent pattern byte for byte;
//   3. deterministic replay — the same seed reproduces the identical
//      DES event fingerprint (asserted by the caller re-running a trial).
//
// All randomness flows through sim::Rng(seed); nothing reads the clock,
// so a trial is a pure function of its seed.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>

#include "check/check.hpp"
#include "check/determinism.hpp"
#include "common/units.hpp"
#include "fabric/fault.hpp"
#include "sim/rng.hpp"
#include "support/test_world.hpp"

namespace partib::test {

// One entry per fault-plan shape the fuzzer must cover (acceptance:
// >= 5 shapes beyond "none").
enum class FaultShape : int {
  kNone = 0,
  kDrop,
  kDelay,
  kRnr,
  kRetryExceeded,
  kQpFlush,
  kMixed,
  /// Shared-resources mode: two sibling channels over one CQ + one SRQ,
  /// with QP-flush and retry-exhausted faults.  A fault on one chain must
  /// not lose or misattribute the sibling's completions.
  kSrqShared,
  /// Arrival-learning channel under delay/drop faults: the fault plan
  /// perturbs wire timing while the profile is learning and the
  /// Start-time replan is re-shaping the layout.  Extra rounds so the
  /// profile warms up and replans actually fire mid-fuzz; replay must
  /// still be bit-identical (learned state is a pure function of the
  /// seed-derived arrival pattern).
  kArrivalPerturbed,
};
inline constexpr int kFaultShapeCount = 9;

inline fabric::FaultPlanConfig make_fault_config(FaultShape shape,
                                                 sim::Rng& rng) {
  fabric::FaultPlanConfig f;
  // Never 0: zero would re-derive from the config fingerprint, which is
  // fine but makes two trials with equal rates share a schedule.
  f.seed = rng.next_u64() | 1;
  f.max_delay = usec(rng.uniform_int(1, 80));
  f.retransmit_delay = usec(rng.uniform_int(4, 20));
  f.fail_latency = usec(rng.uniform_int(1, 60));
  f.max_drops = static_cast<int>(rng.uniform_int(1, 4));
  switch (shape) {
    case FaultShape::kNone:
      break;
    case FaultShape::kDrop:
      f.drop_rate = rng.uniform(0.05, 0.5);
      break;
    case FaultShape::kDelay:
      f.delay_rate = rng.uniform(0.05, 0.5);
      break;
    case FaultShape::kRnr:
      f.rnr_rate = rng.uniform(0.05, 0.4);
      break;
    case FaultShape::kRetryExceeded:
      f.retry_exc_rate = rng.uniform(0.05, 0.4);
      break;
    case FaultShape::kQpFlush:
      f.qp_flush_rate = rng.uniform(0.05, 0.3);
      break;
    case FaultShape::kMixed:
      f.drop_rate = rng.uniform(0.0, 0.15);
      f.delay_rate = rng.uniform(0.0, 0.15);
      f.rnr_rate = rng.uniform(0.0, 0.1);
      f.retry_exc_rate = rng.uniform(0.0, 0.1);
      f.qp_flush_rate = rng.uniform(0.0, 0.1);
      break;
    case FaultShape::kSrqShared:
      // Modest rates so the corpus covers both full recovery and
      // structured failure of one sibling while the other survives.
      f.qp_flush_rate = rng.uniform(0.02, 0.2);
      f.retry_exc_rate = rng.uniform(0.02, 0.2);
      break;
    case FaultShape::kArrivalPerturbed:
      // Timing-perturbing faults: delays skew the completion times the
      // learner observes; occasional drops add retransmit jitter on top.
      f.delay_rate = rng.uniform(0.05, 0.4);
      f.drop_rate = rng.uniform(0.0, 0.15);
      break;
  }
  return f;
}

inline part::Options random_fuzz_options(sim::Rng& rng) {
  part::Options o;
  switch (rng.uniform_int(0, 3)) {
    case 0: o = persistent_options(); break;
    case 1: o = ploggp_options(); break;
    case 2: o = timer_options(usec(rng.uniform_int(1, 200))); break;
    default:
      o = static_options(std::size_t{1} << rng.uniform_int(6, 12),
                         static_cast<int>(rng.uniform_int(1, 4)));
      break;
  }
  // Fuzz the recovery knobs too: tight budgets make budget exhaustion
  // reachable, generous ones make recovery-to-success reachable.
  o.max_send_retries = static_cast<int>(rng.uniform_int(1, 8));
  o.retry_backoff = usec(rng.uniform_int(1, 16));
  return o;
}

/// kArrivalPerturbed options: an arrival-learning channel with fuzzed
/// learning knobs, so the fault-perturbed profile drives real replans.
inline part::Options perturbed_learning_options(sim::Rng& rng) {
  model::ArrivalLearnConfig cfg;
  cfg.ewma_alpha = rng.uniform(0.2, 1.0);
  cfg.hysteresis_epsilon = rng.uniform(0.0, 0.1);
  cfg.quantum = usec(rng.uniform_int(8, 128));
  part::Options o =
      learning_options(usec(rng.uniform_int(50, 4000)), cfg);
  o.max_send_retries = static_cast<int>(rng.uniform_int(2, 8));
  o.retry_backoff = usec(rng.uniform_int(1, 16));
  return o;
}

/// kSrqShared trial body: two sibling channels (ranks 1 and 2 -> rank 0)
/// in shared-resources mode, so the hot rank drains both chains through
/// the connection manager's single CQ and stages receives in its SRQ.
/// The invariants are the standard three, held PER SIBLING: a QP-flush or
/// retry-exhausted fault on one chain must not strand the other's
/// completions (quiescence), deliver them to the wrong channel (exact
/// bytes), or perturb replay (fingerprint).
struct SharedSiblingFixture {
  sim::Engine engine;
  std::unique_ptr<mpi::World> world;
  std::vector<std::byte> sbuf[2];
  std::vector<std::byte> rbuf[2];
  std::unique_ptr<part::PsendRequest> send[2];
  std::unique_ptr<part::PrecvRequest> recv[2];

  SharedSiblingFixture(std::size_t bytes, std::size_t partitions,
                       part::Options opts, mpi::WorldOptions wopts) {
    opts.shared_resources = true;
    wopts.ranks = 3;
    world = std::make_unique<mpi::World>(engine, wopts);
    for (int c = 0; c < 2; ++c) {
      sbuf[c].resize(bytes);
      rbuf[c].resize(bytes);
      PARTIB_ASSERT(partib::ok(part::psend_init(world->rank(c + 1), sbuf[c],
                                                partitions, /*dst=*/0,
                                                /*tag=*/c, /*comm=*/0, opts,
                                                &send[c])));
      PARTIB_ASSERT(partib::ok(part::precv_init(world->rank(0), rbuf[c],
                                                partitions, /*src=*/c + 1,
                                                /*tag=*/c, /*comm=*/0, opts,
                                                &recv[c])));
    }
  }
};

struct LifecycleTrialResult {
  std::uint64_t fingerprint = 0;  ///< DES event-stream hash of the trial
  std::uint64_t events = 0;
  FaultShape shape = FaultShape::kNone;
  bool channel_failed = false;  ///< budget exhausted -> structured error
  std::uint64_t faults_injected = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t failed_ops = 0;
};

inline void run_srq_shared_trial(std::uint64_t seed, sim::Rng& rng,
                                 std::size_t partitions, std::size_t psize,
                                 int rounds, const mpi::WorldOptions& wopts,
                                 LifecycleTrialResult* result) {
  check::DeterminismAuditor auditor;
  SharedSiblingFixture fx(partitions * psize, partitions,
                          random_fuzz_options(rng), wopts);
  auditor.attach(fx.engine);

  for (int round = 1; round <= rounds; ++round) {
    bool any_active = false;
    for (int c = 0; c < 2; ++c) {
      if (fx.send[c]->failed()) continue;  // sibling may still be healthy
      fill_pattern(fx.sbuf[c], round * 2 + c);
      const Status s_start = fx.send[c]->start();
      const Status r_start = fx.recv[c]->start();
      EXPECT_TRUE(ok(s_start) || s_start == Status::kRemoteError) << seed;
      EXPECT_TRUE(ok(r_start) || r_start == Status::kRemoteError) << seed;
      if (!ok(s_start) || !ok(r_start)) continue;
      any_active = true;

      const Duration window = usec(rng.uniform_int(1, 1500));
      const Time t0 = fx.engine.now();
      part::PsendRequest* sp = fx.send[c].get();
      for (std::size_t i = 0; i < partitions; ++i) {
        fx.engine.schedule_at(t0 + rng.uniform_int(0, window),
                              [sp, i, seed] {
                                const Status st = sp->pready(i);
                                EXPECT_TRUE(ok(st) ||
                                            st == Status::kRemoteError)
                                    << seed;
                              });
      }
    }
    if (!any_active) break;
    fx.engine.run();

    for (int c = 0; c < 2; ++c) {
      // Invariant 1, per sibling: quiescence means BOTH chains observably
      // finished — one chain's fault must not strand or misroute the
      // other's CQEs through the shared CQ/SRQ.
      EXPECT_TRUE(fx.send[c]->test()) << seed << " sibling " << c;
      EXPECT_TRUE(fx.recv[c]->test()) << seed << " sibling " << c;
      EXPECT_EQ(fx.send[c]->failed(), fx.recv[c]->failed())
          << seed << " sibling " << c;
      // Invariant 2, per sibling: exact bytes whenever THIS chain
      // succeeded, regardless of what happened to the other one.
      if (!fx.send[c]->failed()) {
        EXPECT_TRUE(buffers_equal(fx.sbuf[c], fx.rbuf[c]))
            << seed << " sibling " << c;
        EXPECT_EQ(fx.send[c]->status(), Status::kOk)
            << seed << " sibling " << c;
      }
    }
  }

  result->channel_failed = fx.send[0]->failed() || fx.send[1]->failed();
  if (check::hooks_compiled_in()) {
    if (result->channel_failed) {
      EXPECT_GE(check::count_rule("part.retry_exhausted"), 1u) << seed;
      EXPECT_EQ(check::violation_count(),
                check::count_rule("part.retry_exhausted"))
          << seed;
    } else {
      EXPECT_EQ(check::violation_count(), 0u) << seed;
    }
  }

  const fabric::FabricStats& stats = fx.world->fab().stats();
  result->faults_injected = stats.faults_injected;
  result->retransmits = stats.retransmits;
  result->failed_ops = stats.failed_ops;
  result->fingerprint = auditor.fingerprint();
  result->events = auditor.events_observed();
}

inline LifecycleTrialResult run_lifecycle_trial(std::uint64_t seed) {
  LifecycleTrialResult result;
  sim::Rng rng(seed);

  // Worlds share one process: clear the checker's thread-local shadow of
  // the previous trial (see check/example_diag_test.cpp) and count
  // silently so expected rule reports don't flood CI logs.
  check::reset();
  check::ScopedPolicy policy(check::Policy::kCount);

  const std::size_t partitions = std::size_t{1} << rng.uniform_int(0, 6);
  const std::size_t psize = std::size_t{1} << rng.uniform_int(6, 12);
  int rounds = static_cast<int>(rng.uniform_int(1, 3));
  result.shape = static_cast<FaultShape>(
      rng.uniform_int(0, kFaultShapeCount - 1));
  // Learning needs epochs: enough rounds to fold the profile and reach
  // the Start-time replan while faults are perturbing arrivals.
  if (result.shape == FaultShape::kArrivalPerturbed) rounds += 3;

  mpi::WorldOptions wopts;
  wopts.faults = make_fault_config(result.shape, rng);

  if (result.shape == FaultShape::kSrqShared) {
    run_srq_shared_trial(seed, rng, partitions, psize, rounds, wopts,
                         &result);
    return result;
  }

  check::DeterminismAuditor auditor;
  ChannelFixture fx(partitions * psize, partitions,
                    result.shape == FaultShape::kArrivalPerturbed
                        ? perturbed_learning_options(rng)
                        : random_fuzz_options(rng),
                    wopts);
  auditor.attach(fx.engine);

  for (int round = 1; round <= rounds; ++round) {
    if (fx.send->failed()) break;
    fill_pattern(fx.sbuf, round);
    const Status s_start = fx.send->start();
    const Status r_start = fx.recv->start();
    EXPECT_TRUE(ok(s_start) || s_start == Status::kRemoteError) << seed;
    EXPECT_TRUE(ok(r_start) || r_start == Status::kRemoteError) << seed;
    if (!ok(s_start) || !ok(r_start)) break;

    // Random interleaving: every partition made ready exactly once at a
    // random time in a random-scale window; parrived polled mid-flight.
    const Duration window = usec(rng.uniform_int(1, 1500));
    std::vector<std::size_t> order(partitions);
    for (std::size_t i = 0; i < partitions; ++i) order[i] = i;
    for (std::size_t i = partitions; i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);
    }
    const Time t0 = fx.engine.now();
    for (std::size_t i : order) {
      fx.engine.schedule_at(t0 + rng.uniform_int(0, window), [&fx, i, seed] {
        // A pready racing the channel failure may see the structured
        // error; anything else is a lifecycle bug.
        const Status st = fx.send->pready(i);
        EXPECT_TRUE(ok(st) || st == Status::kRemoteError) << seed;
      });
    }
    fx.engine.schedule_at(t0 + window / 2, [&fx, partitions] {
      for (std::size_t i = 0; i < partitions; ++i) {
        (void)fx.recv->parrived(i);  // must never crash, failed or not
      }
    });
    fx.engine.run();

    // Invariant 1: no lost completions — quiescence means both sides
    // observably finished, by success or by structured failure.
    EXPECT_TRUE(fx.send->test()) << seed;
    EXPECT_TRUE(fx.recv->test()) << seed;
    EXPECT_EQ(fx.send->failed(), fx.recv->failed()) << seed;

    // Invariant 2: exact bytes whenever the round reports success.
    if (!fx.send->failed()) {
      EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << seed;
      EXPECT_EQ(fx.send->status(), Status::kOk) << seed;
    } else {
      EXPECT_EQ(fx.send->status(), Status::kRemoteError) << seed;
      EXPECT_EQ(fx.recv->status(), Status::kRemoteError) << seed;
    }
  }

  result.channel_failed = fx.send->failed();
  // A failed channel must have reported its rule; a healthy fuzz run must
  // not have tripped any other checker rule.
  if (check::hooks_compiled_in()) {
    if (result.channel_failed) {
      EXPECT_GE(check::count_rule("part.retry_exhausted"), 1u) << seed;
      EXPECT_EQ(check::violation_count(),
                check::count_rule("part.retry_exhausted"))
          << seed;
    } else {
      EXPECT_EQ(check::violation_count(), 0u) << seed;
    }
  }

  const fabric::FabricStats& stats = fx.world->fab().stats();
  result.faults_injected = stats.faults_injected;
  result.retransmits = stats.retransmits;
  result.failed_ops = stats.failed_ops;
  result.fingerprint = auditor.fingerprint();
  result.events = auditor.events_observed();
  return result;
}

/// Aggregators whose plan is a pure function of geometry (no timers, no
/// learned arrival profile): on the real-time shm backend these are the
/// ones whose post ordinals — and therefore the seed-driven fault
/// schedule — replay exactly.
inline part::Options shm_fuzz_options(sim::Rng& rng) {
  part::Options o;
  switch (rng.uniform_int(0, 2)) {
    case 0: o = persistent_options(); break;
    case 1: o = ploggp_options(); break;
    default:
      o = static_options(std::size_t{1} << rng.uniform_int(6, 12),
                         static_cast<int>(rng.uniform_int(1, 4)));
      break;
  }
  o.max_send_retries = static_cast<int>(rng.uniform_int(1, 8));
  o.retry_backoff = usec(rng.uniform_int(1, 16));
  return o;
}

/// One fuzz trial on the shm backend.  Same seed-derived geometry/fault
/// recipe as the DES trial, but with the interleaving made causally
/// deterministic (preadys fire immediately, in index order, from the
/// single driver thread) because real-time scheduling offsets would not
/// replay.  What MUST replay on shm is the outcome tuple — channel_failed,
/// faults_injected, retransmits, failed_ops — since FaultPlan::decide()
/// consumes post ordinals, not wall-clock time.  fingerprint/events stay 0:
/// the DES event-stream auditor has no meaning over a slaved clock.
///
/// Invariants checked per round (docs/FAULTS.md, shm column):
///   1. no lost completions — test() true on both sides at quiescence;
///   2. exact bytes on success;
///   3. structured failure symmetry + the part.retry_exhausted rule.
inline LifecycleTrialResult run_shm_lifecycle_trial(std::uint64_t seed) {
  LifecycleTrialResult result;
  sim::Rng rng(seed);

  check::reset();
  check::ScopedPolicy policy(check::Policy::kCount);

  const std::size_t partitions = std::size_t{1} << rng.uniform_int(0, 6);
  const std::size_t psize = std::size_t{1} << rng.uniform_int(6, 12);
  const int rounds = static_cast<int>(rng.uniform_int(1, 3));
  // Shapes kNone..kMixed; the two DES-specific composites (SRQ siblings,
  // arrival learning) are out of scope — their behaviour depends on
  // observed *times*, which the shm backend does not replay.
  result.shape = static_cast<FaultShape>(
      rng.uniform_int(0, static_cast<int>(FaultShape::kMixed)));

  mpi::WorldOptions wopts;
  wopts.faults = make_fault_config(result.shape, rng);

  const std::string prev_backend = current_backend();
  current_backend() = "shm";
  {
    ChannelFixture fx(partitions * psize, partitions, shm_fuzz_options(rng),
                      wopts);
    for (int round = 1; round <= rounds; ++round) {
      if (fx.send->failed()) break;
      fill_pattern(fx.sbuf, round);
      const Status s_start = fx.send->start();
      const Status r_start = fx.recv->start();
      EXPECT_TRUE(ok(s_start) || s_start == Status::kRemoteError) << seed;
      EXPECT_TRUE(ok(r_start) || r_start == Status::kRemoteError) << seed;
      if (!ok(s_start) || !ok(r_start)) break;

      for (std::size_t i = 0; i < partitions; ++i) {
        const Status st = fx.send->pready(i);
        EXPECT_TRUE(ok(st) || st == Status::kRemoteError) << seed;
        (void)fx.recv->parrived(i);  // mid-flight poll must never crash
      }
      fx.drive();

      EXPECT_TRUE(fx.send->test()) << seed;
      EXPECT_TRUE(fx.recv->test()) << seed;
      EXPECT_EQ(fx.send->failed(), fx.recv->failed()) << seed;
      if (!fx.send->failed()) {
        EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << seed;
        EXPECT_EQ(fx.send->status(), Status::kOk) << seed;
      } else {
        EXPECT_EQ(fx.send->status(), Status::kRemoteError) << seed;
        EXPECT_EQ(fx.recv->status(), Status::kRemoteError) << seed;
      }
    }

    result.channel_failed = fx.send->failed();
    if (check::hooks_compiled_in()) {
      if (result.channel_failed) {
        EXPECT_GE(check::count_rule("part.retry_exhausted"), 1u) << seed;
        EXPECT_EQ(check::violation_count(),
                  check::count_rule("part.retry_exhausted"))
            << seed;
      } else {
        EXPECT_EQ(check::violation_count(), 0u) << seed;
      }
    }

    const fabric::FabricStats& stats = fx.world->fab().stats();
    result.faults_injected = stats.faults_injected;
    result.retransmits = stats.retransmits;
    result.failed_ops = stats.failed_ops;
  }
  current_backend() = prev_backend;
  check::reset();
  return result;
}

}  // namespace partib::test
