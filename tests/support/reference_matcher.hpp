// Verbatim copy of the seed's map/deque InitMatcher, kept as the
// differential-test oracle for mpi::InitMatcher's flat-vector rewrite.
// Do not "improve" this file: its value is that it is byte-for-byte the
// algorithm the figure fingerprints were first recorded against.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <utility>

#include "mpi/matcher.hpp"

namespace partib::test {

/// The pre-rewrite matcher: one std::map of per-key std::deques per side.
/// Drain order per key is posted order (deque FIFO), which is exactly the
/// invariant the rewrite's front-to-back vector scan must reproduce.
class ReferenceInitMatcher {
 public:
  using OnMatch = mpi::InitMatcher::OnMatch;

  void post_recv_init(const mpi::MatchKey& key, OnMatch on_match) {
    auto uit = unexpected_send_.find(key);
    if (uit != unexpected_send_.end() && !uit->second.empty()) {
      const mpi::SendInit init = uit->second.front();
      uit->second.pop_front();
      if (uit->second.empty()) unexpected_send_.erase(uit);
      on_match(init);
      return;
    }
    pending_recv_[key].push_back(std::move(on_match));
  }

  void on_send_init(const mpi::SendInit& init) {
    auto pit = pending_recv_.find(init.key);
    if (pit != pending_recv_.end() && !pit->second.empty()) {
      OnMatch on_match = std::move(pit->second.front());
      pit->second.pop_front();
      if (pit->second.empty()) pending_recv_.erase(pit);
      on_match(init);
      return;
    }
    unexpected_send_[init.key].push_back(init);
  }

  std::size_t pending_recvs() const {
    std::size_t n = 0;
    for (const auto& [k, q] : pending_recv_) n += q.size();
    return n;
  }

  std::size_t unexpected_sends() const {
    std::size_t n = 0;
    for (const auto& [k, q] : unexpected_send_) n += q.size();
    return n;
  }

 private:
  std::map<mpi::MatchKey, std::deque<OnMatch>> pending_recv_;
  std::map<mpi::MatchKey, std::deque<mpi::SendInit>> unexpected_send_;
};

}  // namespace partib::test
