// Backend selection for cross-backend test fixtures (gtest-free so
// test_world.hpp can consume it without pulling the gtest headers into
// every support consumer).
#pragma once

#include <string>
#include <vector>

namespace partib::test {

/// The backend the currently running test's fixtures should build on.
/// Fixtures (BackendVerbsFx, ChannelFixture) read this at construction;
/// BackendTest::SetUp writes it from the test parameter.  thread_local
/// for the same reason as the diag clock: gtest death tests and the
/// runner's worker threads must not see each other's selection.
inline std::string& current_backend() {
  static thread_local std::string name = "des";
  return name;
}

/// Backends every conformance-parameterized suite runs over.  "des"
/// first: it is the oracle, and a cross-backend failure should fail
/// first in the instance whose timeline is deterministic and replayable.
inline std::vector<std::string> conformance_backends() {
  return {"des", "shm"};
}

}  // namespace partib::test
