// Shared test scaffolding: a two-(or N-)rank simulated world plus helpers
// for driving a partitioned channel through rounds.
#pragma once

#include <cstddef>
#include <memory>
#include <numeric>
#include <vector>

#include "agg/strategies.hpp"
#include "backend/backend.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "support/backend_select.hpp"

namespace partib::test {

/// Fill a buffer with a deterministic per-round pattern so data-integrity
/// checks catch stale bytes from earlier rounds.
inline void fill_pattern(std::vector<std::byte>& buf, int round) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(round) * 29 + 7) & 0xFF);
  }
}

inline bool buffers_equal(const std::vector<std::byte>& a,
                          const std::vector<std::byte>& b) {
  return a == b;
}

struct ChannelFixture {
  /// Backend selected via current_backend() ("des" unless a
  /// backend-parameterized suite chose otherwise).  Declared before
  /// `engine`, which is a reference into it.  On "des" the construction
  /// sequence (engine, then fabric on it) is identical to the pre-backend
  /// fixture, so every DES timeline — including the pinned figure
  /// fingerprints — is unchanged.
  std::unique_ptr<backend::Backend> backend;
  sim::Engine& engine;
  std::unique_ptr<mpi::World> world;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;

  static backend::Backend& checked(std::unique_ptr<backend::Backend>& be) {
    PARTIB_ASSERT(be != nullptr);
    return *be;
  }

  static backend::Config backend_config(const mpi::WorldOptions& wopts) {
    backend::Config cfg;
    cfg.nic = wopts.nic;
    cfg.copy_data = wopts.copy_data;
    // Faults stay in WorldOptions: the World ctor installs them on the
    // backend's transport, same single configuration surface as before.
    return cfg;
  }

  ChannelFixture(std::size_t bytes, std::size_t partitions,
                 const part::Options& opts, mpi::WorldOptions wopts = {})
      : backend(backend::make_backend(current_backend(),
                                      backend_config(wopts))),
        engine(checked(backend).engine()) {
    world = std::make_unique<mpi::World>(*backend, wopts);
    sbuf.resize(bytes);
    rbuf.resize(bytes);
    PARTIB_ASSERT(partib::ok(part::psend_init(world->rank(0), sbuf, partitions,
                                              /*dst=*/1, /*tag=*/3,
                                              /*comm=*/0, opts, &send)));
    PARTIB_ASSERT(partib::ok(part::precv_init(world->rank(1), rbuf, partitions,
                                              /*src=*/0, /*tag=*/3,
                                              /*comm=*/0, opts, &recv)));
  }

  /// Drive the backend to quiescence: engine.run() on DES, the real-time
  /// progress pump on shm.  Cross-backend test bodies must use this (or
  /// run_round) instead of engine.run().
  void drive() { backend->run_until_idle(); }

  /// Run one full round: start both sides, mark every partition ready (in
  /// index order, immediately), and drive the backend to quiescence.
  void run_round(int round) {
    fill_pattern(sbuf, round);
    PARTIB_ASSERT(partib::ok(send->start()));
    PARTIB_ASSERT(partib::ok(recv->start()));
    for (std::size_t i = 0; i < send->user_partitions(); ++i) {
      PARTIB_ASSERT(partib::ok(send->pready(i)));
    }
    drive();
  }
};

inline part::Options options_with(std::shared_ptr<const agg::Aggregator> a) {
  part::Options o;
  o.aggregator = std::move(a);
  return o;
}

inline part::Options ploggp_options() {
  return options_with(std::make_shared<agg::PLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured()));
}

inline part::Options persistent_options() {
  return options_with(std::make_shared<agg::PersistentBaseline>());
}

inline part::Options static_options(std::size_t tp, int qps) {
  return options_with(std::make_shared<agg::StaticAggregator>(tp, qps));
}

inline part::Options tuning_table_options() {
  return options_with(std::make_shared<agg::TuningTableAggregator>(
      agg::TuningTable::niagara_prebuilt()));
}

inline part::Options timer_options(Duration delta) {
  return options_with(std::make_shared<agg::TimerPLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), delta));
}

inline part::Options learning_options(Duration delta0 = msec(4),
                                      model::ArrivalLearnConfig cfg = {}) {
  return options_with(std::make_shared<agg::ArrivalLearningAggregator>(
      model::LogGPParams::niagara_mpi_measured(), delta0, cfg));
}

}  // namespace partib::test
