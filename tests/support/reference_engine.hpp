// Reference DES engine: the original std::map-based implementation the
// production engine (src/sim/engine.hpp) replaced.
//
// The production engine's bucketed-heap queue promises *byte-identical*
// dispatch behaviour to this one — same (time, seq) dispatch order, same
// sequence-number assignment, same observer stream — while being several
// times faster.  This copy is kept verbatim (modulo naming) as the
// differential-testing oracle: tests/sim/engine_differential_test.cpp
// replays randomized schedule/cancel/run interleavings against both and
// asserts the dispatch streams and fingerprints match exactly.
//
// Do not "improve" this file; its value is that it stays the simple,
// obviously-correct specification of engine semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/assert.hpp"
#include "common/diag.hpp"
#include "common/time.hpp"

namespace partib::test {

class ReferenceEngine {
 public:
  using Callback = std::function<void()>;
  using DispatchObserver =
      std::function<void(Time, std::uint64_t, const char*)>;

  struct EventId {
    Time time = 0;
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  ReferenceEngine() = default;
  ReferenceEngine(const ReferenceEngine&) = delete;
  ReferenceEngine& operator=(const ReferenceEngine&) = delete;

  Time now() const { return now_; }

  EventId schedule_at(Time t, Callback cb, const char* site = nullptr) {
    PARTIB_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
    PARTIB_ASSERT(cb != nullptr);
    const Key key{t, next_seq_++};
    queue_.emplace(key, Event{std::move(cb), site});
    return EventId{key.first, key.second};
  }

  EventId schedule_after(Duration d, Callback cb,
                         const char* site = nullptr) {
    PARTIB_ASSERT_MSG(d >= 0, "negative delay");
    return schedule_at(now_ + d, std::move(cb), site);
  }

  bool cancel(EventId id) {
    if (!id.valid()) return false;
    return queue_.erase(Key{id.time, id.seq}) > 0;
  }

  bool step() {
    if (queue_.empty()) return false;
    dispatch_front();
    return true;
  }

  std::size_t run() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      dispatch_front();
      ++n;
    }
    return n;
  }

  std::size_t run_until(Time deadline) {
    PARTIB_ASSERT_MSG(deadline >= now_, "deadline in the past");
    std::size_t n = 0;
    while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
      dispatch_front();
      ++n;
    }
    now_ = deadline;
    return n;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed_count() const { return processed_; }

  void set_dispatch_observer(DispatchObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  using Key = std::pair<Time, std::uint64_t>;

  struct Event {
    Callback cb;
    const char* site;
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  // Ordered map doubles as priority queue and cancellation index.
  std::map<Key, Event> queue_;
  DispatchObserver observer_;

  void dispatch_front() {
    auto it = queue_.begin();
    now_ = it->first.first;
    diag_set_time(now_);
    Event ev = std::move(it->second);
    const Key key = it->first;
    queue_.erase(it);
    ++processed_;
    if (observer_) observer_(key.first, key.second, ev.site);
    ev.cb();
  }
};

}  // namespace partib::test
