// Reproduction regression tests: every figure's *qualitative claim* from
// EXPERIMENTS.md, encoded as an assertion on a scaled-down run.  If a
// parameter or model change silently breaks a paper shape, these fail —
// the benches only print.
#include <gtest/gtest.h>

#include "bench/overhead.hpp"
#include "bench/perceived.hpp"
#include "bench/sweep.hpp"
#include "check/determinism.hpp"
#include "common/units.hpp"
#include "fabric/fault.hpp"
#include "model/ploggp.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

Duration overhead(std::size_t bytes, std::size_t parts,
                  const part::Options& opts) {
  bench::OverheadConfig cfg;
  cfg.total_bytes = bytes;
  cfg.user_partitions = parts;
  cfg.options = opts;
  cfg.iterations = 5;
  cfg.warmup = 2;
  return bench::run_overhead(cfg).mean_round;
}

double perceived(std::size_t bytes, std::size_t parts,
                 const part::Options& opts) {
  bench::PerceivedConfig cfg;
  cfg.total_bytes = bytes;
  cfg.user_partitions = parts;
  cfg.options = opts;
  cfg.iterations = 3;
  cfg.warmup = 1;
  return bench::run_perceived_bandwidth(cfg).mean_gbytes_per_s;
}

// --- Fig 6 -------------------------------------------------------------------

TEST(Fig6, SmallMessagesTransportCountInconclusive) {
  // "0.16% to 1.77% difference between two and 32 transport partitions
  //  up to 8KiB" — ours must stay within a few percent.
  for (std::size_t bytes : {std::size_t{2} * KiB, std::size_t{8} * KiB}) {
    const auto t2 = overhead(bytes, 32, static_options(2, 2));
    const auto t32 = overhead(bytes, 32, static_options(32, 2));
    const double ratio = static_cast<double>(t2) / static_cast<double>(t32);
    EXPECT_GT(ratio, 0.95) << bytes;
    EXPECT_LT(ratio, 1.05) << bytes;
  }
}

TEST(Fig6, MediumMessagesFavourMoreTransportPartitions) {
  // "After 16KiB, more transport partitions are favourable."
  const auto t2 = overhead(128 * KiB, 32, static_options(2, 2));
  const auto t32 = overhead(128 * KiB, 32, static_options(32, 2));
  EXPECT_LT(t32, t2);
}

TEST(Fig6, LargeMessagesSaturateTowardBaseline) {
  // "Once we reach around 4MiB we drop to a speedup of 1.0."
  const auto base = overhead(16 * MiB, 32, persistent_options());
  const auto ours = overhead(16 * MiB, 32, static_options(8, 2));
  const double speedup =
      static_cast<double>(base) / static_cast<double>(ours);
  EXPECT_LT(speedup, 1.25);
  EXPECT_GT(speedup, 0.95);
}

// --- Fig 7 -------------------------------------------------------------------

TEST(Fig7, SingleQpSufficientForSmallMessages) {
  const auto q1 = overhead(4 * KiB, 16, static_options(16, 1));
  const auto q16 = overhead(4 * KiB, 16, static_options(16, 16));
  const double ratio = static_cast<double>(q1) / static_cast<double>(q16);
  EXPECT_LT(ratio, 1.05);  // no benefit from 16 QPs
}

TEST(Fig7, ManyQpsWinForLargeMessages) {
  const auto q1 = overhead(4 * MiB, 16, static_options(16, 1));
  const auto q16 = overhead(4 * MiB, 16, static_options(16, 16));
  EXPECT_LT(q16, q1);  // "large messages prefer more concurrency"
}

// --- Fig 8 -------------------------------------------------------------------

TEST(Fig8, MediumMessagePeakSpeedupAt32Partitions) {
  // "peak speedup of 2.17x over the persistent implementation" at
  // 128 KiB; ours must land in the same band.
  const auto base = overhead(128 * KiB, 32, persistent_options());
  const auto ours = overhead(128 * KiB, 32, ploggp_options());
  const double speedup =
      static_cast<double>(base) / static_cast<double>(ours);
  EXPECT_GT(speedup, 1.8);
  EXPECT_LT(speedup, 3.2);
}

TEST(Fig8, OversubscribedPartitionsAmplifyAggregationWin) {
  // "With 128 user partitions, we see up to 8.80x speedup ... we have
  //  over-subscribed the number of threads on our system."
  const auto base = overhead(256 * KiB, 128, persistent_options());
  const auto ours = overhead(256 * KiB, 128, ploggp_options());
  const double speedup =
      static_cast<double>(base) / static_cast<double>(ours);
  EXPECT_GT(speedup, 4.0);
  // And it must exceed the 32-partition win at the same size.
  const auto base32 = overhead(256 * KiB, 32, persistent_options());
  const auto ours32 = overhead(256 * KiB, 32, ploggp_options());
  EXPECT_GT(speedup, static_cast<double>(base32) /
                         static_cast<double>(ours32));
}

TEST(Fig8, TuningTableTracksPLogGPTrends) {
  // "using the Tuning Table Aggregator and the PLogGP Aggregator
  //  generally follow similar trends" — both must beat the baseline
  //  wherever the other does, medium range.
  for (std::size_t bytes : {std::size_t{64} * KiB, std::size_t{256} * KiB}) {
    const auto base = overhead(bytes, 32, persistent_options());
    const auto table = overhead(bytes, 32, tuning_table_options());
    const auto model = overhead(bytes, 32, ploggp_options());
    EXPECT_LT(table, base) << bytes;
    EXPECT_LT(model, base) << bytes;
  }
}

// --- Fig 9 -------------------------------------------------------------------

TEST(Fig9, EarlyBirdBeatsWireBandwidth) {
  // All designs' perceived bandwidth sits above the single-threaded wire
  // line for medium messages.
  const double wire = 1.0 / fabric::NicParams::connectx5_edr().wire.G;
  EXPECT_GT(perceived(8 * MiB, 32, persistent_options()), wire);
  EXPECT_GT(perceived(8 * MiB, 32, ploggp_options()), wire);
  EXPECT_GT(perceived(8 * MiB, 32, timer_options(usec(3000))), wire);
}

TEST(Fig9, AggregationLowersPerceivedBandwidth) {
  EXPECT_LT(perceived(8 * MiB, 32, ploggp_options()),
            0.5 * perceived(8 * MiB, 32, persistent_options()));
}

TEST(Fig9, TimerClosesTheGap) {
  const double p = perceived(8 * MiB, 32, persistent_options());
  const double t = perceived(8 * MiB, 32, timer_options(usec(3000)));
  EXPECT_GT(t, 0.85 * p);  // "performs much closer to the persistent"
}

TEST(Fig9, LargeMessagesConvergeTowardWire) {
  const double wire = 1.0 / fabric::NicParams::connectx5_edr().wire.G;
  const double big = perceived(256 * MiB, 32, persistent_options());
  EXPECT_LT(big, 2.0 * wire);  // within 2x of the dotted line
}

// --- Fig 12 / 13 -------------------------------------------------------------

TEST(Fig12, MinDeltaGrowsWithPartitionCount) {
  auto min_delta = [](std::size_t parts) {
    prof::PartProfiler profiler(parts);
    bench::PerceivedConfig cfg;
    cfg.total_bytes = 32 * MiB;
    cfg.user_partitions = parts;
    cfg.options = ploggp_options();
    cfg.iterations = 3;
    cfg.warmup = 1;
    cfg.profiler = &profiler;
    (void)bench::run_perceived_bandwidth(cfg);
    return profiler.mean_min_delta();
  };
  const Duration d8 = min_delta(8);
  const Duration d32 = min_delta(32);
  const Duration d128 = min_delta(128);
  EXPECT_LT(d8, d32);
  EXPECT_LT(d32, d128);
  // "a minimum delta value of 35us should be sufficient" at 32 parts.
  EXPECT_GT(d32, usec(15));
  EXPECT_LT(d32, usec(60));
}

TEST(Fig13, DeltaWindowIsWide) {
  // "the difference between delta=10us, 35us, and 100us is at most
  //  6.15%" — ours must stay within that bound too.
  const double d10 = perceived(8 * MiB, 32, timer_options(usec(10)));
  const double d100 = perceived(8 * MiB, 32, timer_options(usec(100)));
  EXPECT_NEAR(d10, d100, 0.0615 * std::max(d10, d100));
}

// --- Fig 14 ------------------------------------------------------------------

TEST(Fig14, NoiseDelayDilutesSweepSpeedup) {
  auto sweep_speedup = [](Duration compute, double noise) {
    auto run = [&](const part::Options& opts) {
      bench::SweepConfig cfg;
      cfg.px = 4;
      cfg.py = 4;
      cfg.threads = 16;
      cfg.message_bytes = 64 * KiB;
      cfg.options = opts;
      cfg.compute = compute;
      cfg.noise = noise;
      cfg.iterations = 3;
      cfg.warmup = 1;
      return bench::run_sweep(cfg).comm_time;
    };
    return static_cast<double>(run(persistent_options())) /
           static_cast<double>(run(ploggp_options()));
  };
  const double low_noise = sweep_speedup(msec(1), 0.01);    // 10 us delay
  const double high_noise = sweep_speedup(msec(10), 0.04);  // 400 us delay
  EXPECT_GT(low_noise, 1.3);
  EXPECT_GT(low_noise, high_noise);
  EXPECT_LT(high_noise, 1.35);
}

TEST(Fig14, TimerAtLeastMatchesPLogGPForMediumMessages) {
  auto comm = [](const part::Options& opts) {
    bench::SweepConfig cfg;
    cfg.px = 4;
    cfg.py = 4;
    cfg.threads = 16;
    cfg.message_bytes = 1 * MiB;
    cfg.options = opts;
    cfg.compute = msec(10);
    cfg.noise = 0.04;
    cfg.iterations = 3;
    cfg.warmup = 1;
    return bench::run_sweep(cfg).comm_time;
  };
  EXPECT_LE(comm(timer_options(usec(35))), comm(ploggp_options()));
}

// --- Fig 3 / Table I (model level) -------------------------------------------

TEST(Fig3, ModelRegimes) {
  const auto p = model::LogGPParams::niagara_mpi_measured();
  // Small: fewer partitions faster.  Large: more partitions faster.
  EXPECT_LT(model::completion_time(p, {4 * KiB, 1, msec(4)}),
            model::completion_time(p, {4 * KiB, 32, msec(4)}));
  EXPECT_GT(model::completion_time(p, {256 * MiB, 1, msec(4)}),
            model::completion_time(p, {256 * MiB, 32, msec(4)}));
}

// --- Fault plumbing must cost nothing when off -------------------------------

TEST(Fig8, DisabledFaultPlanLeavesEventStreamIdentical) {
  // Full-figure byte-identity is pinned at the CSV level by the
  // Fig08CsvBytePinned / Fig10And11CsvBytePinned ctest entries
  // (bench/CMakeLists.txt, cmake/check_output_md5.cmake).  Here the same
  // property at event granularity: installing a fault plan whose every
  // rate is zero must leave the dispatched event stream bit-identical to
  // a world with no plan at all.
  std::uint64_t fp[2];
  for (int i = 0; i < 2; ++i) {
    check::DeterminismAuditor auditor;
    ChannelFixture fx(512 * KiB, 32, ploggp_options());
    if (i == 1) {
      fx.world->fab().set_fault_plan(fabric::FaultPlan{});  // installed, inert
    }
    auditor.attach(fx.engine);
    for (int round = 0; round < 3; ++round) fx.run_round(round);
    EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
    fp[i] = auditor.fingerprint();
    EXPECT_GT(auditor.events_observed(), 0u);
  }
  EXPECT_EQ(fp[0], fp[1]);
}

TEST(Fig8, DisabledFaultConfigLeavesTrialResultsIdentical) {
  // The WorldOptions::faults default (all rates zero) must take the
  // exact same code path as a world that predates the fault plane: the
  // fig08-style trial durations have to agree to the virtual nanosecond.
  bench::OverheadConfig cfg;
  cfg.total_bytes = 512 * KiB;
  cfg.user_partitions = 32;
  cfg.options = ploggp_options();
  cfg.iterations = 5;
  cfg.warmup = 2;
  const bench::OverheadResult base = bench::run_overhead(cfg);

  bench::OverheadConfig spelled = cfg;
  spelled.world.faults = fabric::FaultPlanConfig{};  // explicit zero rates
  const bench::OverheadResult same = bench::run_overhead(spelled);
  EXPECT_EQ(base.mean_round, same.mean_round);
  EXPECT_EQ(base.min_round, same.min_round);
  EXPECT_EQ(base.max_round, same.max_round);
  EXPECT_EQ(base.wrs_posted, same.wrs_posted);
  EXPECT_EQ(base.host_cpu_per_round, same.host_cpu_per_round);
}

}  // namespace
}  // namespace partib::test
